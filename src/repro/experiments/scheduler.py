"""Dependency-aware parallel suite runner.

``python -m repro.experiments all`` used to execute ~30 experiments
strictly serially, and every experiment implicitly (re)characterized
whatever designs it touched.  This module turns the implicit resource
usage into an explicit schedule:

1. **Plan** -- :func:`plan_suite` merges the specs' declared
   :class:`~repro.experiments.registry.Resources` into the set of
   unique ``(width, kind)`` designs and netlists the suite needs.
   Experiments themselves are mutually independent; the only shared
   edges in the dependency graph are these characterization artifacts,
   so the topological order collapses to exactly two stages.
2. **Warm-up** -- each unique design is characterized exactly once
   (widest first: the 32-bit designs dominate) and persisted to the
   shared :class:`~repro.experiments.store.ArtifactStore`.
3. **Fan-out** -- the experiments run over a
   :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each
   hold an :class:`~repro.experiments.context.ExperimentContext` backed
   by the same store, so no worker ever recomputes a warm artifact.

Rendered experiment outputs are byte-identical to the serial run: every
random draw is seeded, the store round-trips arrays losslessly, and the
two-plane replay is bit-identical to direct simulation, so only the
wall-clock attribution changes.  Workers return rendered strings (plus
timing and cache accounting), not result objects, which keeps the
transport picklable and the parent deterministic: entries are emitted
in request order regardless of completion order.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..config import DEFAULT_SIM_CONFIG, DEFAULT_TECHNOLOGY
from ..errors import ConfigError
from .context import ExperimentContext
from .registry import get_experiment, list_experiments
from .store import ArtifactStore, counter_delta, delta_totals


@dataclasses.dataclass(frozen=True)
class SuitePlan:
    """The two-stage schedule of one suite invocation.

    Attributes:
        names: Experiment ids in emission order.
        warmup_designs: Unique ``(width, kind)`` designs to
            characterize up front, widest first.
        warmup_netlists: Unique netlist-only builds not implied by a
            design.
    """

    names: Tuple[str, ...]
    warmup_designs: Tuple[Tuple[int, str], ...]
    warmup_netlists: Tuple[Tuple[int, str], ...]


def shard_ranges(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous,
    near-equal ``(lo, hi)`` ranges (first shards one longer when the
    split is uneven).  Shared by the Monte Carlo runner
    (:mod:`repro.montecarlo.runner`): concatenating the per-range
    results in order reproduces the unsharded computation exactly.
    """
    if total < 0:
        raise ConfigError("total must be >= 0, got %r" % (total,))
    if shards < 1:
        raise ConfigError("shards must be >= 1, got %r" % (shards,))
    if total == 0:
        return []
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def plan_suite(names: Sequence[str]) -> SuitePlan:
    """Merge the named specs' resource declarations into a plan."""
    specs = [get_experiment(name) for name in names]
    designs: List[Tuple[int, str]] = []
    netlists: List[Tuple[int, str]] = []
    for spec in specs:
        for pair in spec.resources.designs:
            if pair not in designs:
                designs.append(pair)
        for pair in spec.resources.netlists:
            if pair not in netlists:
                netlists.append(pair)
    netlists = [pair for pair in netlists if pair not in designs]
    # Widest-first: characterizing a 32-bit design dominates warm-up,
    # so it must start before the cheap 8/16-bit ones, not after.
    designs.sort(key=lambda pair: (-pair[0], pair[1]))
    netlists.sort(key=lambda pair: (-pair[0], pair[1]))
    return SuitePlan(
        names=tuple(names),
        warmup_designs=tuple(designs),
        warmup_netlists=tuple(netlists),
    )


@dataclasses.dataclass
class SuiteEntry:
    """One experiment's outcome inside a suite run."""

    name: str
    title: str
    rendered: str
    elapsed: float
    #: Store counter delta attributable to this experiment
    #: (``kind -> {hits, misses, writes}``); empty without a store.
    store_delta: Dict[str, Dict[str, int]]
    #: The result object (serial runs only; parallel workers return
    #: rendered text, so this is None).
    result: object = None
    #: Failure description when the experiment raised or its worker
    #: died -- a degraded-but-typed record instead of an aborted suite.
    error: Optional[str] = None

    def cache_hits(self) -> int:
        return delta_totals(self.store_delta)["hits"]


@dataclasses.dataclass
class SuiteResult:
    """Outcome + accounting of one :func:`run_suite` invocation."""

    entries: List[SuiteEntry]
    plan: SuitePlan
    jobs: int
    wall_s: float
    warmup_s: float
    store_dir: Optional[str]
    #: Merged store counters over parent + all workers (None: no store).
    store_counters: Optional[Dict[str, Dict[str, int]]]

    def entry(self, name: str) -> SuiteEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise ConfigError("no suite entry %r" % (name,))

    def rendered_by_name(self) -> Dict[str, str]:
        """Experiment id -> rendered output (the byte-identity surface
        compared across serial / parallel / warm runs)."""
        return {entry.name: entry.rendered for entry in self.entries}

    def total_hits(self) -> int:
        if self.store_counters is None:
            return 0
        return sum(
            stats.get("hits", 0) for stats in self.store_counters.values()
        )

    def failures(self) -> List[SuiteEntry]:
        """Entries whose experiment raised or whose worker died."""
        return [entry for entry in self.entries if entry.error is not None]

    def render(self) -> str:
        """Per-experiment wall-clock / cache-hit accounting table."""
        rows = []
        for entry in self.entries:
            totals = delta_totals(entry.store_delta)
            rows.append(
                [
                    entry.name,
                    entry.elapsed,
                    float(totals["hits"]),
                    float(totals["misses"]),
                    float(totals["writes"]),
                ]
            )
        lines = [
            "suite: %d experiments, jobs=%d, wall %.1f s"
            " (warm-up %.1f s)"
            % (len(self.entries), self.jobs, self.wall_s, self.warmup_s)
        ]
        if self.store_dir is not None:
            lines.append("store: %s" % self.store_dir)
        lines.append(
            format_table(
                ["experiment", "seconds", "hits", "misses", "writes"],
                rows,
            )
        )
        failed = self.failures()
        if failed:
            lines.append("failed: %d of %d experiments"
                         % (len(failed), len(self.entries)))
            for entry in failed:
                lines.append("  %s -- %s" % (entry.name, entry.error))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker-process side.  State ships once through the pool initializer
# (the faults.parallel idiom); tasks then reference it by module global.
# ----------------------------------------------------------------------

_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _init_worker(technology, config, scale, characterize_patterns,
                 store_dir, kernel="soa") -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExperimentContext(
        technology=technology,
        config=config,
        scale=scale,
        characterize_patterns=characterize_patterns,
        store=ArtifactStore(store_dir),
        kernel=kernel,
    )


def _snapshot(context: ExperimentContext):
    return context.store.snapshot() if context.store is not None else {}


def _delta(context: ExperimentContext, before):
    if context.store is None:
        return {}
    return counter_delta(before, context.store.snapshot())


def _warmup_design(pair: Tuple[int, str]):
    width, kind = pair
    before = _snapshot(_WORKER_CONTEXT)
    start = time.perf_counter()
    _WORKER_CONTEXT.factory(width, kind)
    return (
        time.perf_counter() - start,
        _delta(_WORKER_CONTEXT, before),
    )


def _warmup_netlist(pair: Tuple[int, str]):
    width, kind = pair
    before = _snapshot(_WORKER_CONTEXT)
    start = time.perf_counter()
    _WORKER_CONTEXT.netlist(width, kind)
    return (
        time.perf_counter() - start,
        _delta(_WORKER_CONTEXT, before),
    )


def _run_spec(name: str):
    spec = get_experiment(name)
    before = _snapshot(_WORKER_CONTEXT)
    start = time.perf_counter()
    result = spec.run(_WORKER_CONTEXT)
    elapsed = time.perf_counter() - start
    return (
        name,
        spec.title,
        result.render(),
        elapsed,
        _delta(_WORKER_CONTEXT, before),
    )


# ----------------------------------------------------------------------


def _resolve_names(
    names: Optional[Sequence[str]], tag: Optional[str]
) -> List[str]:
    if names:
        resolved = []
        for name in names:
            get_experiment(name)  # validate (did-you-mean on typos)
            if name not in resolved:
                resolved.append(name)
        return resolved
    return [spec.id for spec in list_experiments(tag=tag)]


def _spec_weight(name: str) -> Tuple[int, str]:
    """Submission priority: widest declared design first (the 32-bit
    sweeps dominate the makespan), stable by id."""
    spec = get_experiment(name)
    widths = [width for width, _ in spec.resources.designs]
    return (-max(widths) if widths else 0, name)


def run_suite(
    names: Optional[Sequence[str]] = None,
    tag: Optional[str] = None,
    scale: float = 1.0,
    jobs: int = 1,
    store=None,
    technology=DEFAULT_TECHNOLOGY,
    config=DEFAULT_SIM_CONFIG,
    characterize_patterns: int = 2000,
    context: Optional[ExperimentContext] = None,
    on_result: Optional[Callable[[SuiteEntry], None]] = None,
    kernel: str = "soa",
    pool=None,
) -> SuiteResult:
    """Run a set of experiments, optionally in parallel over a store.

    Args:
        names: Experiment ids (None: every registered experiment,
            filtered by ``tag``).
        scale: Pattern-count multiplier forwarded to every context.
        jobs: Worker processes.  1 runs serially in this process;
            N > 1 fans out over a ``ProcessPoolExecutor`` after the
            warm-up stage.
        store: :class:`ArtifactStore`, directory path, or None.  With
            ``jobs > 1`` and no store, a temporary store is created for
            the run (the workers need a sharing medium) and removed
            afterwards.
        context: Serial runs only -- reuse an existing context (its
            technology/config/scale win over the other arguments).
        on_result: Called with each :class:`SuiteEntry` as soon as it
            is finalized, always in request order.
        kernel: Execution backend every worker context compiles
            circuits with (all backends are bit-identical).
        pool: Optional :class:`~repro.distrib.pool.WorkerPool`;
            experiments run on its workers (default technology/config
            only -- job specs travel as JSON) and return rendered text,
            byte-identical to the serial run.

    Returns:
        A :class:`SuiteResult`; entry order matches the request order,
        and rendered outputs are byte-identical for any ``jobs``.
    """
    if jobs < 1:
        raise ConfigError("jobs must be >= 1, got %r" % (jobs,))
    names = _resolve_names(names, tag)
    plan = plan_suite(names)
    if isinstance(store, str):
        store = ArtifactStore(store)
    if context is not None and jobs > 1:
        raise ConfigError("an explicit context forces a serial run")

    start = time.perf_counter()
    if pool is not None:
        if (technology is not DEFAULT_TECHNOLOGY
                or config is not DEFAULT_SIM_CONFIG):
            raise ConfigError(
                "pooled suites rebuild state from JSON job specs,"
                " which only carry the default technology/config"
            )
        result = _run_pooled(
            plan, scale, characterize_patterns, kernel, pool, on_result,
        )
    elif jobs == 1 or len(names) <= 1:
        result = _run_serial(
            plan, scale, store, technology, config,
            characterize_patterns, context, on_result, kernel,
        )
    else:
        result = _run_parallel(
            plan, scale, jobs, store, technology, config,
            characterize_patterns, on_result, kernel,
        )
    result.wall_s = time.perf_counter() - start
    return result


def _run_pooled(
    plan, scale, characterize_patterns, kernel, pool, on_result,
) -> SuiteResult:
    """Fan the experiments out over a :class:`WorkerPool`.

    Workers rebuild an :class:`ExperimentContext` from the job spec and
    return rendered text -- the same transport as the process pool, so
    outputs stay byte-identical to the serial run.
    """
    from ..distrib.pool import run_suite_pooled

    requests = [
        {
            "job": "experiment",
            "name": name,
            "scale": scale,
            "characterize_patterns": characterize_patterns,
            "kernel": kernel,
        }
        for name in plan.names
    ]
    responses = run_suite_pooled(pool, requests)
    entries: List[SuiteEntry] = []
    for name, response in zip(plan.names, responses):
        if response.get("error"):
            entry = _error_entry(name, response["error"])
        else:
            entry = SuiteEntry(
                name=name,
                title=response["title"],
                rendered=response["rendered"],
                elapsed=float(response.get("elapsed", 0.0)),
                store_delta={},
            )
        entries.append(entry)
        if on_result is not None:
            on_result(entry)
    return SuiteResult(
        entries=entries,
        plan=plan,
        jobs=pool.size,
        wall_s=0.0,
        warmup_s=0.0,
        store_dir=None,
        store_counters=None,
    )


def _run_serial(
    plan, scale, store, technology, config, characterize_patterns,
    context, on_result, kernel="soa",
) -> SuiteResult:
    ctx = context or ExperimentContext(
        technology=technology,
        config=config,
        scale=scale,
        characterize_patterns=characterize_patterns,
        store=store,
        kernel=kernel,
    )
    warmup_start = time.perf_counter()
    for width, kind in plan.warmup_designs:
        ctx.factory(width, kind)
    for width, kind in plan.warmup_netlists:
        ctx.netlist(width, kind)
    warmup_s = time.perf_counter() - warmup_start

    entries: List[SuiteEntry] = []
    for name in plan.names:
        spec = get_experiment(name)
        before = _snapshot(ctx)
        t0 = time.perf_counter()
        result = spec.run(ctx)
        entry = SuiteEntry(
            name=name,
            title=spec.title,
            rendered=result.render(),
            elapsed=time.perf_counter() - t0,
            store_delta=_delta(ctx, before),
            result=result,
        )
        entries.append(entry)
        if on_result is not None:
            on_result(entry)
    return SuiteResult(
        entries=entries,
        plan=plan,
        jobs=1,
        wall_s=0.0,
        warmup_s=warmup_s,
        store_dir=ctx.store.directory if ctx.store else None,
        store_counters=ctx.store.snapshot() if ctx.store else None,
    )


def _make_executor(
    jobs, technology, config, scale, characterize_patterns, store_dir,
    kernel="soa",
) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(
            technology, config, scale, characterize_patterns, store_dir,
            kernel,
        ),
    )


def _error_entry(name: str, error) -> SuiteEntry:
    """A degraded-but-typed record for a failed experiment."""
    spec = get_experiment(name)
    if isinstance(error, BaseException):
        message = "%s: %s" % (type(error).__name__, error)
    else:
        message = str(error)
    return SuiteEntry(
        name=name,
        title=spec.title,
        rendered="ERROR: %s" % message,
        elapsed=0.0,
        store_delta={},
        error=message,
    )


def _run_parallel(
    plan, scale, jobs, store, technology, config,
    characterize_patterns, on_result, kernel="soa",
) -> SuiteResult:
    temp_dir = None
    if store is None:
        temp_dir = tempfile.mkdtemp(prefix="repro-suite-store-")
        store = ArtifactStore(temp_dir)
    jobs = min(jobs, len(plan.names))
    executor = _make_executor(
        jobs, technology, config, scale, characterize_patterns,
        store.directory, kernel,
    )
    try:
        warmup_start = time.perf_counter()
        warmups = [
            executor.submit(_warmup_design, pair)
            for pair in plan.warmup_designs
        ]
        warmups += [
            executor.submit(_warmup_netlist, pair)
            for pair in plan.warmup_netlists
        ]
        for future in warmups:
            _, delta = future.result()  # re-raises worker failures
            store.merge_counters(delta)
        warmup_s = time.perf_counter() - warmup_start

        order = {name: i for i, name in enumerate(plan.names)}
        entries: List[SuiteEntry] = [None] * len(plan.names)
        done_entries: Dict[int, SuiteEntry] = {}
        flush = [0]  # next request-order index to emit

        def finalize(entry: SuiteEntry) -> None:
            index = order[entry.name]
            entries[index] = entry
            done_entries[index] = entry
            # Flush finalized entries strictly in request order.
            while flush[0] in done_entries:
                if on_result is not None:
                    on_result(done_entries[flush[0]])
                flush[0] += 1

        def harvest(future, name) -> bool:
            """Finalize one completed future.  Returns True when the
            future died with the pool (caller must rebuild + retry)."""
            try:
                _, title, rendered, elapsed, delta = future.result()
            except BrokenProcessPool:
                return True
            except Exception as exc:
                # Deterministic in-worker failure: record, no retry.
                finalize(_error_entry(name, exc))
                return False
            store.merge_counters(delta)
            finalize(SuiteEntry(
                name=name,
                title=title,
                rendered=rendered,
                elapsed=elapsed,
                store_delta=delta,
            ))
            return False

        # A worker calling os._exit (or being OOM-killed) breaks the
        # whole pool: every unfinished future raises BrokenProcessPool,
        # innocents included.  First breakage: rebuild the pool and
        # resubmit every survivor in parallel.  Second breakage: the
        # crasher is among the survivors, so isolate -- run them one at
        # a time so a repeat crash implicates exactly one experiment,
        # which becomes an error record while the rest complete.
        remaining = sorted(plan.names, key=_spec_weight)
        pool_broke_before = False
        while remaining:
            futures = {
                executor.submit(_run_spec, name): name
                for name in remaining
            }
            remaining = []
            pending = set(futures)
            broke = False
            while pending:
                completed, pending = wait(
                    pending, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    name = futures[future]
                    if harvest(future, name):
                        broke = True
                        remaining.append(name)
            if not broke:
                break
            executor.shutdown(wait=False, cancel_futures=True)
            executor = _make_executor(
                jobs, technology, config, scale,
                characterize_patterns, store.directory, kernel,
            )
            remaining.sort(key=_spec_weight)
            if pool_broke_before:
                # Isolation pass: one in-flight experiment at a time.
                for name in remaining:
                    if harvest(executor.submit(_run_spec, name), name):
                        finalize(_error_entry(
                            name, "worker process died while running"
                            " this experiment",
                        ))
                        executor.shutdown(
                            wait=False, cancel_futures=True
                        )
                        executor = _make_executor(
                            jobs, technology, config, scale,
                            characterize_patterns, store.directory,
                            kernel,
                        )
                remaining = []
            pool_broke_before = True
        return SuiteResult(
            entries=entries,
            plan=plan,
            jobs=jobs,
            wall_s=0.0,
            warmup_s=warmup_s,
            store_dir=None if temp_dir else store.directory,
            store_counters=store.snapshot(),
        )
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
