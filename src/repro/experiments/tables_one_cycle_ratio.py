"""Tables I and II: one-cycle pattern ratios.

Table I (16x16): Skip-7/8/9 ratios for the VLCB (judged on the
multiplicand) and VLRB (judged on the multiplicator).
Table II (32x32): Skip-15/16/17.

With uniformly random operands both columns estimate the same binomial
tail P(zeros >= skip); the paper's two columns differ by a few points
(different random samples) -- EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..core.judging import JudgingBlock
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 65536

#: Paper-reported ratios: (width, skip) -> (VLCB %, VLRB %).
PAPER_RATIOS = {
    (16, 7): (0.7358, 0.7739),
    (16, 8): (0.5378, 0.5989),
    (16, 9): (0.3322, 0.4020),
    (32, 15): (0.6646, 0.6699),
    (32, 16): (0.5268, 0.5274),
    (32, 17): (0.3818, 0.3842),
}


def binomial_tail(width: int, skip: int) -> float:
    """Exact P(#zeros >= skip) for uniform operands."""
    return sum(
        math.comb(width, k) for k in range(skip, width + 1)
    ) / 2.0**width


@dataclasses.dataclass
class OneCycleRatioResult:
    width: int
    ratios: Dict[Tuple[str, int], float]  # (kind, skip) -> measured ratio
    num_patterns: int

    def render(self) -> str:
        skips = sorted({skip for _, skip in self.ratios})
        rows = []
        for skip in skips:
            paper = PAPER_RATIOS.get((self.width, skip), (float("nan"),) * 2)
            rows.append(
                [
                    "Skip-%d" % skip,
                    self.ratios[("column", skip)],
                    paper[0],
                    self.ratios[("row", skip)],
                    paper[1],
                    binomial_tail(self.width, skip),
                ]
            )
        return format_table(
            ["", "VLCB", "paper", "VLRB", "paper", "binomial"], rows
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    skips: Optional[Sequence[int]] = None,
    num_patterns: Optional[int] = None,
) -> OneCycleRatioResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    if skips is None:
        base = width // 2 - 1
        skips = (base, base + 1, base + 2)
    md, mr = ctx.stream(width, n)
    ratios = {}
    for skip in skips:
        block = JudgingBlock(width, skip)
        ratios[("column", skip)] = block.one_cycle_ratio(md)
        ratios[("row", skip)] = block.one_cycle_ratio(mr)
    return OneCycleRatioResult(width=width, ratios=ratios, num_patterns=n)


def run_table1(context: Optional[ExperimentContext] = None, **kw):
    return run(context, width=16, **kw)


def run_table2(context: Optional[ExperimentContext] = None, **kw):
    return run(context, width=32, **kw)
