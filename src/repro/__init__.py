"""repro -- reproduction of "Aging-Aware Reliable Multiplier Design With
Adaptive Hold Logic" (Lin, Cho, Yang).

Layered public API:

* :mod:`repro.nets`      -- gate-level netlist substrate
* :mod:`repro.timing`    -- per-pattern timing, power, STA engines
* :mod:`repro.arith`     -- array / column-bypassing / row-bypassing
  multipliers and adders
* :mod:`repro.aging`     -- NBTI/PBTI reaction-diffusion aging model
* :mod:`repro.razor`     -- Razor flip-flop error detection
* :mod:`repro.faults`    -- stuck-at / transient / delay fault models and
  injection campaigns
* :mod:`repro.core`      -- the paper's contribution: adaptive hold logic
  and the variable-latency multiplier architecture
* :mod:`repro.workloads` -- seeded pattern generators
* :mod:`repro.experiments` -- one module per paper table/figure
* :mod:`repro.montecarlo` -- correlated process-variation x aging
  Monte Carlo over die populations (``python -m repro mc``)

Quickstart::

    from repro import AgingAwareMultiplier

    mult = AgingAwareMultiplier.build(width=16, kind="column", skip=7,
                                      cycle_ns=0.9)
    report = mult.run_random(10_000, seed=1)
    print(report.average_latency_ns, report.error_count)
"""

from .config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SimulationConfig,
    Technology,
)
from .errors import (
    CalibrationError,
    CombinationalLoopError,
    ConfigError,
    FaultError,
    NetlistError,
    RecoveryExhaustedError,
    ReproError,
    SimulationError,
    UnknownCellError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "AgingAwareMultiplier",
    "CalibrationError",
    "CombinationalLoopError",
    "ConfigError",
    "DEFAULT_SIM_CONFIG",
    "DEFAULT_TECHNOLOGY",
    "FaultError",
    "MonteCarloSpec",
    "NetlistError",
    "RecoveryExhaustedError",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "Technology",
    "UnknownCellError",
    "WorkloadError",
    "__version__",
]


def __getattr__(name):
    # Lazy import of the heavyweight architecture class so that
    # ``import repro`` stays cheap for substrate-only users.
    if name == "AgingAwareMultiplier":
        from .core.architecture import AgingAwareMultiplier

        return AgingAwareMultiplier
    if name == "MonteCarloSpec":
        # Light import: the spec module pulls no simulation machinery.
        from .montecarlo.spec import MonteCarloSpec

        return MonteCarloSpec
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
