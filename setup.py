"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` works on minimal environments
without the ``wheel`` package (pip falls back to the legacy develop
path when a setup.py is present).
"""

from setuptools import setup

setup()
