"""Using the substrate as a library: a custom bypassing design.

The paper's architecture is not tied to the two shipped multipliers: any
combinational netlist with an operand whose zero count predicts its path
delay can sit inside the Razor + AHL wrapper.  This example builds a
hybrid 8x8 multiplier by hand -- column bypassing on the low nibble
diagonals only (cheaper area, partial delay variability) -- wires it into
the architecture, and verifies it end to end.

It demonstrates the full public substrate API: netlist construction,
validation, compiled simulation, static timing, aging characterization
and the cycle-accurate architecture wrapper.

Run:  python examples/custom_multiplier.py
"""

import numpy as np

from repro.aging import AgedCircuitFactory
from repro.arith import golden_products
from repro.arith.adders import carry_save_add
from repro.arith.array_mult import _final_ripple, partial_products
from repro.core import AgingAwareMultiplier
from repro.nets import Netlist
from repro.nets.netlist import CONST0
from repro.timing import StaticTiming


def hybrid_multiplier(width=8, bypassed_diagonals=4):
    """Column bypassing on the first ``bypassed_diagonals`` only."""
    nl = Netlist("hybrid-cb-%dx%d" % (width, width))
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    product = [None] * (2 * width)
    sums = {w: pp[0][w] for w in range(width)}
    carries = {}
    product[0] = sums[0]

    for i in range(1, width):
        new_sums, new_carries = {}, {}
        for w in range(i, i + width):
            d = w - i
            sum_in = sums.get(w, CONST0)
            carry_in = carries.get(w, CONST0)
            if d < bypassed_diagonals:
                # Bypassed cell: tri-states + sum mux + carry mask.
                group = "cbd%d" % d
                if group not in nl.group_enables:
                    nl.set_group_enable(group, md[d])
                gated_sum = (
                    nl.tribuf(sum_in, md[d], group=group)
                    if sum_in != CONST0
                    else CONST0
                )
                gated_carry = (
                    nl.tribuf(carry_in, md[d], group=group)
                    if carry_in != CONST0
                    else CONST0
                )
                fa_sum, fa_carry = carry_save_add(
                    nl, pp[i][d], gated_sum, gated_carry, group=group
                )
                new_sums[w] = (
                    nl.mux2(sum_in, fa_sum, md[d])
                    if fa_sum != sum_in
                    else sum_in
                )
                if fa_carry != CONST0:
                    new_carries[w + 1] = nl.and2(md[d], fa_carry)
            else:
                # Plain carry-save cell.
                fa_sum, fa_carry = carry_save_add(
                    nl, pp[i][d], sum_in, carry_in
                )
                new_sums[w] = fa_sum
                if fa_carry != CONST0:
                    new_carries[w + 1] = fa_carry
        product[i] = new_sums[i]
        sums, carries = new_sums, new_carries

    _final_ripple(nl, width, sums, carries, product)
    nl.add_output_port("p", product)
    nl.validate()
    return nl


def main():
    netlist = hybrid_multiplier()
    print("Built %s: %d cells, %d nets" % (
        netlist.name, len(netlist.cells), netlist.num_nets))
    print("Critical path: %.3f ns" % StaticTiming(netlist).critical_delay)

    # Exhaustive functional check against the golden model.
    factory = AgedCircuitFactory.characterize(netlist, num_patterns=1000)
    n = 256
    md = np.repeat(np.arange(n, dtype=np.uint64), n)
    mr = np.tile(np.arange(n, dtype=np.uint64), n)
    result = factory.circuit(0.0).run({"md": md, "mr": mr})
    assert np.array_equal(result.outputs["p"], golden_products(md, mr, 8))
    print("Exhaustive 8x8 check: all %d products exact." % (n * n))

    # Wrap it in the paper's architecture.  Only the low nibble drives
    # the delay now, so judge on a low skip threshold.
    arch = AgingAwareMultiplier(
        netlist=netlist,
        kind="column",
        width=8,
        skip=3,
        cycle_ns=0.55 * StaticTiming(netlist).critical_delay,
        factory=factory,
    )
    report = arch.run_random(5_000, seed=11).report
    print(
        "Architecture run: avg latency %.3f ns (cycle %.3f ns), "
        "one-cycle ratio %.2f, %d Razor errors"
        % (
            report.average_latency_ns,
            arch.cycle_ns,
            report.one_cycle_ratio,
            report.error_count,
        )
    )
    print(
        "Area: %d transistors incl. AHL and Razor bank"
        % arch.area().total
    )


if __name__ == "__main__":
    main()
