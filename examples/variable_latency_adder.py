"""The paper's motivating example: an 8-bit variable-latency RCA (Fig. 4).

Builds the ripple-carry adder with the hold logic
``(A4 XOR B4)(A5 XOR B5)``, measures the hold probability, and recovers
the paper's arithmetic: average latency 0.75*5 + 0.25*10 = 6.25 units
against the fixed-latency 8 units -- a 28% speedup.

Run:  python examples/variable_latency_adder.py
"""

import numpy as np

from repro.arith import variable_latency_rca
from repro.timing import CompiledCircuit, StaticTiming
from repro.workloads import uniform_operands


def main():
    netlist = variable_latency_rca(8, hold_positions=(3, 4))
    circuit = CompiledCircuit(netlist)
    print("8-bit RCA with hold logic: %d cells" % len(netlist.cells))
    print("Critical path: %.3f ns" % StaticTiming(netlist).critical_delay)

    a, b = uniform_operands(8, 20_000, seed=2)
    result = circuit.run({"a": a, "b": b})
    assert np.array_equal(result.outputs["s"], a + b)

    hold = result.outputs["hold"].astype(bool)
    p_hold = hold.mean()
    print("P(hold) = %.3f   (paper: 0.25)" % p_hold)

    # The paper's unit-delay accounting: short cycle 5, long path 8.
    average = (1 - p_hold) * 5 + p_hold * 10
    print(
        "average latency = %.2f units vs fixed 8 units "
        "-> %.0f%% speedup (paper: 6.25, 28%%)"
        % (average, 100 * (8 / average - 1))
    )

    # And the structural view: held operations really are the slow ones.
    print(
        "mean measured delay: held %.3f ns vs non-held %.3f ns"
        % (result.delays[hold].mean(), result.delays[~hold].mean())
    )


if __name__ == "__main__":
    main()
