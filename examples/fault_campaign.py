"""Fault-injection campaign over the aging-aware multiplier.

Sweeps stuck-at / transient (SEU) / localized-delay fault sites over an
8x8 adaptive column-bypassing multiplier and reports, per fault kind,
how much of the resulting corruption the Razor bank detects.  The split
is the headline: Razor is a *timing* monitor, so delay hot-spots are
fully covered while stuck-at and SEU corruption mostly latches cleanly
before the main clock edge -- silent data corruption.

The campaign runs under the ``degrade`` recovery policy: sites whose
fault pushes arrivals past the two-cycle budget fall back to a bounded
multi-cycle retry (recorded in the per-site stats) instead of aborting
the sweep.  A second run shows the ``strict`` policy doing exactly
that -- refusing to continue past the first unrecoverable overrun.

The sweep itself runs as a *campaign job*: sharded over two worker
processes (bit-identical to serial), checkpointed to a JSONL file after
every site, and pruned of sites whose logic cone cannot reach any
product bit.  Re-running the script resumes from the checkpoint instead
of re-simulating -- delete the file to start fresh.

Run:  python examples/fault_campaign.py
"""

import os
import tempfile

from repro import AgingAwareMultiplier, RecoveryExhaustedError
from repro.faults import DelayFault, InjectionCampaign, compile_with_faults

WIDTH = 8
SITES = 60
PATTERNS = 2_000
CHECKPOINT = os.path.join(tempfile.gettempdir(), "repro_campaign.jsonl")


def main():
    print("Building the %dx%d A-VLCB..." % (WIDTH, WIDTH))
    mult = AgingAwareMultiplier.build(
        WIDTH, "column", skip=WIDTH // 2 - 1, cycle_ns=0.9
    )
    # Run at 60% of the critical path: tight enough that Razor has real
    # work to do, the operating region the paper's sweeps prefer.
    mult = mult.with_cycle(0.6 * mult.critical_path_ns())

    print(
        "Sweeping %d fault sites x %d patterns (degrade policy,"
        " 2 workers, checkpoint %s)..." % (SITES, PATTERNS, CHECKPOINT)
    )
    campaign = InjectionCampaign.sweep(
        mult, num_sites=SITES, num_patterns=PATTERNS, seed=7
    )
    result = campaign.run(workers=2, checkpoint=CHECKPOINT)
    print()
    print(result.render())
    if result.resumed_sites:
        print(
            "(resumed %d already-simulated sites from the checkpoint)"
            % result.resumed_sites
        )
    print()
    print(
        "silent corruption rate: %.4f corrupted-and-unflagged products"
        " per pattern per site" % result.silent_corruption_rate()
    )

    # The worst single site, in detail.
    worst = max(result.sites, key=lambda s: s.silent_ops)
    print(
        "worst site %s: %d corrupted, %d detected, %d silent"
        % (worst.label, worst.corrupted_ops, worst.detected_ops,
           worst.silent_ops)
    )

    # A hot-spot the AHL *can* answer: extra delay on one cell raises
    # the error rate, the indicator trips, Skip-(n+1) sheds the errors.
    hot = DelayFault(len(mult.netlist.cells) // 2, 0.9 * mult.cycle_ns)
    site, _ = InjectionCampaign(
        mult, [hot], num_patterns=PATTERNS, seed=7
    ).run_site(hot)
    switch = (
        "op %d" % site.indicator_aged_at
        if site.indicator_aged_at >= 0
        else "never"
    )
    print()
    print(
        "delay hot-spot %s: %d Razor errors, AHL switched at %s,"
        " %d ops recovered by multi-cycle fallback"
        % (site.label, site.razor_errors, switch, site.recovered_ops)
    )

    # Under the strict policy the same hot-spot is a hard stop as soon
    # as an arrival overruns what Razor + two-cycle execution can fix.
    stream = compile_with_faults(mult.netlist, [hot], mult.technology).run(
        {"md": campaign.md, "mr": campaign.mr}
    )
    try:
        mult.run_patterns(
            campaign.md, campaign.mr, stream=stream, policy="strict"
        )
        print("strict policy: clean (no unrecoverable overruns)")
    except RecoveryExhaustedError as exc:
        print("strict policy refused: %s" % exc)


if __name__ == "__main__":
    main()
