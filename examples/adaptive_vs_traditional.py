"""Adaptive hold logic in action (paper Figs. 19 and 23).

Runs the same aged (7-year) 16x16 column-bypassing multiplier with and
without the AHL's adaptivity across a range of clock periods, showing:

* the aging indicator tripping after the first high-error window,
* the switch to the Skip-8 judging block cutting the Razor error count,
* the latency gap opening at short cycle periods.

Run:  python examples/adaptive_vs_traditional.py
"""

import dataclasses

from repro import AgingAwareMultiplier
from repro.analysis import format_table
from repro.workloads import uniform_operands

YEARS = 7.0
CYCLES = (0.60, 0.70, 0.80, 0.90)


def main():
    print("Building the 16x16 A-VLCB and aging it %.0f years..." % YEARS)
    adaptive = AgingAwareMultiplier.build(16, "column", skip=7, cycle_ns=0.9)
    traditional = dataclasses.replace(adaptive, adaptive=False, name="")
    md, mr = uniform_operands(16, 10_000, seed=3)

    # One circuit simulation serves every clock period.
    stream = adaptive.factory.circuit(YEARS).run({"md": md, "mr": mr})

    rows = []
    for cycle in CYCLES:
        rep_a = adaptive.with_cycle(cycle).run_patterns(
            md, mr, years=YEARS, stream=stream
        ).report
        rep_t = traditional.with_cycle(cycle).run_patterns(
            md, mr, years=YEARS, stream=stream
        ).report
        switch = (
            "op %d" % rep_a.indicator_aged_at
            if rep_a.indicator_aged_at >= 0
            else "never"
        )
        rows.append(
            [
                cycle,
                rep_t.error_count,
                rep_a.error_count,
                rep_t.average_latency_ns,
                rep_a.average_latency_ns,
                switch,
            ]
        )
    print()
    print(
        format_table(
            [
                "cycle ns",
                "T-VL errors",
                "A-VL errors",
                "T-VL latency",
                "A-VL latency",
                "AHL switch",
            ],
            rows,
        )
    )
    print()
    print(
        "The adaptive design always sees fewer Razor violations; its"
        " latency advantage is largest at the shortest cycle periods"
        " (paper Section IV-C)."
    )


if __name__ == "__main__":
    main()
