"""A dense 7-year lifetime sweep on the two-plane stream engine.

Sweeps the 8x8 A-VLCB across 20 aging timesteps.  The value plane
(logic values, switching activity, may-transition flags) is computed
once -- it is delay-independent -- and a single batched arrival replay
then prices all 20 BTI delay corners, instead of 20 full simulations.
The script prints the value-pass vs replay wall-clock split alongside
the per-year latency/error trend.

Run:  python examples/lifetime_sweep.py
"""

import time

from repro import AgingAwareMultiplier
from repro.analysis import format_table
from repro.timing import ArrivalReplay
from repro.workloads import uniform_operands

LIFETIME_YEARS = 7.0
TIMESTEPS = 20
PATTERNS = 10_000


def main():
    print("Building the 8x8 A-VLCB...")
    arch = AgingAwareMultiplier.build(8, "column", skip=3, cycle_ns=0.9)
    arch = arch.with_cycle(0.62 * arch.critical_path_ns())
    md, mr = uniform_operands(8, PATTERNS, seed=17)
    years = [
        LIFETIME_YEARS * i / (TIMESTEPS - 1) for i in range(TIMESTEPS)
    ]

    # The two planes, timed separately.  (run_lifetime below would do
    # this internally; it is unrolled here to show the split.)
    start = time.time()
    plane = arch.factory.value_plane({"md": md, "mr": mr})
    value_s = time.time() - start

    scales = arch.factory.lifetime_delay_scales(years)
    start = time.time()
    replayed = ArrivalReplay(arch.factory.circuit(0.0), plane).replay(
        scales
    )
    replay_s = time.time() - start

    # One classic single-pass simulation, for scale.
    start = time.time()
    arch.factory.circuit(years[-1]).run({"md": md, "mr": mr})
    full_s = time.time() - start

    print(
        "value pass %.3f s (once) + arrival replay %.3f s "
        "(%d timesteps) for %d patterns"
        % (value_s, replay_s, TIMESTEPS, PATTERNS)
    )
    print(
        "  -> %.1f ms per aging corner replayed vs %.0f ms for a full "
        "simulation per corner (%.1fx end-to-end)"
        % (
            1e3 * replay_s / TIMESTEPS,
            1e3 * full_s,
            TIMESTEPS * full_s / (value_s + replay_s),
        )
    )

    rows = []
    for year, stream in zip(years, replayed.stream_results()):
        report = arch.run_patterns(
            md, mr, years=year, stream=stream
        ).report
        rows.append(
            [
                round(year, 2),
                round(stream.max_delay, 4),
                round(report.average_latency_ns, 4),
                report.error_count,
                "yes" if report.indicator_aged_at >= 0 else "no",
            ]
        )
    print()
    print(
        format_table(
            ["years", "crit ns", "avg lat ns", "errors", "aged?"], rows
        )
    )


if __name__ == "__main__":
    main()
