"""Quickstart: build the paper's aging-aware multiplier and measure it.

Builds a 16x16 adaptive variable-latency column-bypassing multiplier
(A-VLCB, Skip-7) exactly as in Section III, runs 10 000 random
operations, and compares its average latency with the three baselines of
the paper: the plain array multiplier (AM) and the fixed-latency
column-/row-bypassing multipliers (FLCB/FLRB).

Run:  python examples/quickstart.py
"""

from repro import AgingAwareMultiplier
from repro.analysis import format_table, improvement
from repro.core.baselines import FixedLatencyDesign


def main():
    print("Building the 16x16 A-VLCB (Skip-7, T = 0.9 ns)...")
    mult = AgingAwareMultiplier.build(
        width=16, kind="column", skip=7, cycle_ns=0.9
    )

    print("Running 10 000 random multiplications...")
    result = mult.run_random(10_000, seed=1, check_golden=True)
    report = result.report
    assert result.golden_ok, "products must match the golden model"

    print("Building fixed-latency baselines...")
    am = FixedLatencyDesign.build(16, "am")
    flcb = FixedLatencyDesign.build(16, "column")
    flrb = FixedLatencyDesign.build(16, "row")

    rows = [
        ["AM (fixed)", am.latency_ns(), "-"],
        ["FLCB (fixed)", flcb.latency_ns(), "-"],
        ["FLRB (fixed)", flrb.latency_ns(), "-"],
        [
            mult.name,
            report.average_latency_ns,
            "%.1f%% vs FLCB, %.1f%% vs AM"
            % (
                100 * improvement(report.average_latency_ns, flcb.latency_ns()),
                100 * improvement(report.average_latency_ns, am.latency_ns()),
            ),
        ],
    ]
    print()
    print(format_table(["design", "avg latency ns", "improvement"], rows))
    print()
    print(
        "one-cycle patterns: %.1f%%   Razor errors: %d / %d ops"
        % (
            100 * report.one_cycle_ratio,
            report.error_count,
            report.num_ops,
        )
    )


if __name__ == "__main__":
    main()
