"""Lifetime study: seven years of NBTI/PBTI aging (paper Fig. 26).

Simulates the 16x16 designs from year 0 to year 7 with the calibrated
reaction-diffusion BTI model and prints the latency / power / EDP table:
the fixed-latency designs slow down ~13%, while the adaptive
variable-latency design keeps its latency nearly flat -- the paper's
central reliability claim.

Run:  python examples/lifetime_study.py
"""

from repro.analysis import format_table
from repro.experiments import ExperimentContext
from repro.experiments.fig26_27_lifetime import run_fig26


def main():
    context = ExperimentContext(scale=0.3)  # 3 000 patterns per point
    print("Simulating 16x16 designs over a 7-year lifetime...")
    result = run_fig26(context, years=(0.0, 1.0, 2.0, 4.0, 7.0))

    rows = []
    for design in ("am", "flcb", "flrb", "a-vlcb", "a-vlrb"):
        latency = result.latency_ns[design]
        power = result.power_w[design]
        rows.append(
            [
                design,
                latency.y[0],
                latency.y[-1],
                "%.1f%%" % (100 * result.latency_growth(design)),
                power.y[0] * 1e3,
                power.y[-1] * 1e3,
                "%.1f%%" % (100 * result.mean_edp_reduction_vs_am(design)),
            ]
        )
    print()
    print(
        format_table(
            [
                "design",
                "latency y0",
                "latency y7",
                "growth",
                "mW y0",
                "mW y7",
                "EDP vs AM",
            ],
            rows,
        )
    )
    print()
    am = result.latency_ns["am"]
    avlcb = result.latency_ns["a-vlcb"]
    crossover = next(
        (year for year, a, v in zip(result.years, am.y, avlcb.y) if a > v),
        None,
    )
    if crossover is not None:
        print(
            "The AM's aged latency crosses above the A-VLCB at year %.0f "
            "(the paper reports the crossover after ~2 years)." % crossover
        )


if __name__ == "__main__":
    main()
