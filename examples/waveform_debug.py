"""Waveform debugging: dump a Razor-violating pattern to VCD.

Finds a pattern whose path delay misses the cycle edge (a Razor error),
replays the exact two-vector stimulus through the event-driven
transport-delay simulator, and writes the full switching waveform to a
VCD file viewable in GTKWave -- the debugging loop the authors' Verilog
flow provides, reproduced at gate level.

Run:  python examples/waveform_debug.py [out.vcd]
"""

import sys

import numpy as np

from repro import AgingAwareMultiplier
from repro.timing import EventSimulator
from repro.timing.vcd import write_vcd


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "razor_violation.vcd"

    print("Building a 16x16 A-VLCB at a tight 0.7 ns clock...")
    mult = AgingAwareMultiplier.build(16, "column", skip=7, cycle_ns=0.7)
    result = mult.run_random(4000, seed=13)
    report = result.report
    print(
        "Ran %d ops: %d Razor violations."
        % (report.num_ops, report.error_count)
    )

    violations = np.nonzero(result.errors)[0]
    if violations.size == 0:
        print("No violations at this clock; nothing to dump.")
        return
    index = int(violations[0])
    print(
        "First violation at op %d: delay %.3f ns vs cycle %.3f ns."
        % (index, result.delays[index], mult.cycle_ns)
    )

    # Replay the exact two-vector stimulus with event-driven timing.
    rng = np.random.default_rng(13)
    md = rng.integers(0, 1 << 16, 4000, dtype=np.uint64)
    mr = rng.integers(0, 1 << 16, 4000, dtype=np.uint64)
    prev = {"md": int(md[index - 1]), "mr": int(mr[index - 1])}
    new = {"md": int(md[index]), "mr": int(mr[index])}
    sim = EventSimulator(mult.netlist)
    event = sim.run_pair(prev, new, record_trace=True)
    print(
        "Event replay: %d transitions, transport-delay settle %.3f ns "
        "(inertial glitch-filtered estimate was %.3f ns)."
        % (event.num_events, event.settle_time, result.delays[index])
    )

    write_vcd(event, mult.netlist, out_path)
    print("Waveform written to %s (open with GTKWave)." % out_path)


if __name__ == "__main__":
    main()
