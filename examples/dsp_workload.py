"""Application workloads: FIR filtering on the aging-aware multiplier.

The paper's introduction motivates the design with Fourier transforms,
DCTs and digital filtering.  This example feeds the architecture the
operand streams a direct-form FIR filter actually produces (fixed
zero-rich coefficient taps against streaming samples) and compares
against uniform random operands: structured DSP streams are *more*
bypass-friendly, so the variable-latency win grows.

Run:  python examples/dsp_workload.py
"""

from repro import AgingAwareMultiplier
from repro.analysis import format_table
from repro.arith import count_zeros
from repro.core.baselines import FixedLatencyDesign
from repro.workloads import (
    dct_stream,
    fir_filter_stream,
    image_gradient_stream,
    uniform_operands,
)

WIDTH = 16
PATTERNS = 10_000


def main():
    arch = AgingAwareMultiplier.build(WIDTH, "column", skip=7, cycle_ns=0.9)
    fixed = FixedLatencyDesign.build(WIDTH, "column")
    fixed_latency = fixed.latency_ns()

    workloads = {
        "uniform random": uniform_operands(WIDTH, PATTERNS, seed=7),
        "FIR filtering": fir_filter_stream(WIDTH, PATTERNS, seed=7),
        "8-point DCT": dct_stream(WIDTH, PATTERNS, seed=7),
        "image gradients": image_gradient_stream(WIDTH, PATTERNS, seed=7),
    }

    from repro.core import JudgingBlock

    relaxed = JudgingBlock(WIDTH, arch.skip)
    rows = []
    for name, (md, mr) in workloads.items():
        result = arch.run_patterns(md, mr, check_golden=True)
        assert result.golden_ok
        report = result.report
        switch = (
            "op %d" % report.indicator_aged_at
            if report.indicator_aged_at >= 0
            else "-"
        )
        rows.append(
            [
                name,
                float(count_zeros(md, WIDTH).mean()),
                relaxed.one_cycle_ratio(md),
                report.one_cycle_ratio,
                report.average_latency_ns,
                "%.1f%%" % (100 * report.improvement_over(fixed_latency)),
                switch,
            ]
        )
    print(
        format_table(
            [
                "workload",
                "zeros(md)",
                "potential",
                "realized",
                "latency ns",
                "vs FLCB",
                "AHL trip",
            ],
            rows,
        )
    )
    print()
    print(
        "Zero-rich coefficient streams raise the one-cycle *potential*."
        "  Note the AHL can also trip on workload structure: a FIR"
        " stream's full-scale center taps generate transition patterns"
        " that violate a clock tuned on uniform noise, and the indicator"
        " then trades one-cycle coverage for fewer re-executions --"
        " the same mechanism that protects against aging."
    )


if __name__ == "__main__":
    main()
