"""Per-phase profiling harness for the gate-level engine.

Breaks an end-to-end lifetime sweep into its four phases and times each
with ``time.perf_counter``:

* **compile** -- netlist -> :class:`CompiledCircuit` (levelization,
  opcode bucketing, delay characterization);
* **fold**    -- unique-stimulus folding of the operand stream;
* **value**   -- the delay-independent value plane (logic values,
  switching activity, may-transition flags);
* **replay**  -- the batched multi-corner arrival replay.

Use it to see where a workload actually spends its time before tuning:
zero-heavy DSP streams fold well (the value/replay phases collapse),
while uniform-random streams do not and lean on the sparse replay
instead.  Pass ``--cprofile`` for a function-level cProfile of the
hot phases on top of the wall-clock split.

Run:  python examples/profile_engine.py --width 16 --workload fir
      python examples/profile_engine.py --kernel percell --no-fold
      python examples/profile_engine.py --cprofile
"""

import argparse
import cProfile
import pstats
import time

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.timing import ArrivalReplay, CompiledCircuit, build_value_plane
from repro.timing.fold import fold_stimulus, unfold_stream
from repro.workloads import sparse_fir_stream, uniform_operands


def parse_args():
    parser = argparse.ArgumentParser(
        description="Per-phase wall-clock profile of the stream engine."
    )
    parser.add_argument("--width", type=int, default=16,
                        help="multiplier operand width (default 16)")
    parser.add_argument("--patterns", type=int, default=6000,
                        help="operand stream length (default 6000)")
    parser.add_argument("--timesteps", type=int, default=12,
                        help="aging corners to replay (default 12)")
    parser.add_argument("--years", type=float, default=7.0,
                        help="lifetime horizon in years (default 7)")
    parser.add_argument("--kernel", choices=("soa", "percell"),
                        default="soa",
                        help="gate kernel to profile (default soa)")
    parser.add_argument("--workload", choices=("fir", "uniform"),
                        default="fir",
                        help="operand stream: zero-heavy FIR or "
                             "uniform random (default fir)")
    parser.add_argument("--no-fold", action="store_true",
                        help="disable unique-stimulus folding")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cprofile", action="store_true",
                        help="also print a cProfile of value+replay")
    return parser.parse_args()


def main():
    args = parse_args()
    if args.workload == "fir":
        md, mr = sparse_fir_stream(args.width, args.patterns,
                                   seed=args.seed)
    else:
        md, mr = uniform_operands(args.width, args.patterns,
                                  seed=args.seed)
    stimulus = {"md": md, "mr": mr}
    years = [
        args.years * i / (args.timesteps - 1)
        for i in range(args.timesteps)
    ]

    netlist = column_bypass_multiplier(args.width)
    phases = {}

    t0 = time.perf_counter()
    circuit = CompiledCircuit(netlist, kernel=args.kernel)
    factory = AgedCircuitFactory.characterize(netlist, num_patterns=400)
    phases["compile"] = time.perf_counter() - t0
    scales = factory.lifetime_delay_scales(years)

    plan = None
    run_stimulus = stimulus
    t0 = time.perf_counter()
    if not args.no_fold:
        plan = fold_stimulus(stimulus)
        if plan.profitable:
            run_stimulus = plan.folded
        else:
            plan = None
    phases["fold"] = time.perf_counter() - t0

    def value_phase():
        return build_value_plane(circuit, run_stimulus)

    def replay_phase(plane):
        return ArrivalReplay(circuit, plane).replay(scales)

    if args.cprofile:
        profiler = cProfile.Profile()
        profiler.enable()
    t0 = time.perf_counter()
    plane = value_phase()
    phases["value"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    replayed = replay_phase(plane)
    phases["replay"] = time.perf_counter() - t0
    if args.cprofile:
        profiler.disable()

    # Scatter folded results back so the sweep is complete either way.
    if plan is not None:
        streams = [
            unfold_stream(replayed.stream_result(j), plan)
            for j in range(len(years))
        ]
    else:
        streams = replayed.stream_results()

    print(
        "%dx%d column-bypass | %d patterns (%s) | %d corners | "
        "kernel=%s"
        % (args.width, args.width, args.patterns, args.workload,
           args.timesteps, args.kernel)
    )
    if plan is not None:
        print(
            "folded %d patterns -> %d unique transitions (%.1fx)"
            % (args.patterns, plan.num_unique, plan.fold_factor)
        )
    elif not args.no_fold:
        print("folding skipped: stream not repetitive enough to pay")
    total = sum(phases.values())
    for name in ("compile", "fold", "value", "replay"):
        seconds = phases[name]
        print(
            "  %-8s %8.4f s  (%5.1f%%)"
            % (name, seconds, 100.0 * seconds / total)
        )
    print("  %-8s %8.4f s" % ("total", total))
    worst = max(
        float(streams[j].delays.max()) for j in range(len(years))
    )
    print("worst-case path over the sweep: %.3f ns" % worst)

    if args.cprofile:
        print()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(18)


if __name__ == "__main__":
    main()
