"""Design-space walk: picking the operating point (Section IV-A).

The paper stresses that the variable-latency multiplier only beats the
baselines inside a *preferred cycle-period range*, and that designers
should match the system clock to it (or change the skip number).  This
example automates that with :func:`repro.core.select_operating_point`:

1. pick the best feasible (skip, cycle) point on fresh silicon,
2. pick it again *at the 7-year lifetime target*,
3. show that the lifetime-aware point keeps working on aged silicon
   while the fresh-optimal point starts slipping.

Run:  python examples/design_space.py
"""

from repro import AgingAwareMultiplier
from repro.core import select_operating_point


def main():
    print("Building the 16x16 adaptive column-bypassing architecture...")
    arch = AgingAwareMultiplier.build(16, "column", skip=7, cycle_ns=0.9)

    print("Sweeping skips {7,8,9} x 11 cycle periods (fresh silicon)...")
    fresh = select_operating_point(arch, num_patterns=4000, seed=1)
    print("  best fresh point:    %s" % fresh.best)
    print(
        "  preferred range (skip 7): %.3f - %.3f ns"
        % (
            fresh.preferred_range(7)[0],
            fresh.preferred_range(7)[-1],
        )
    )

    print("Sweeping again at the 7-year lifetime target...")
    aged = select_operating_point(arch, num_patterns=4000, seed=1, years=7.0)
    print("  best lifetime point: %s" % aged.best)

    # How do both points behave on aged silicon?
    print()
    print("Validating both points on 7-year-old silicon:")
    for label, point in (("fresh-optimal", fresh.best),
                         ("lifetime-aware", aged.best)):
        candidate = arch.with_skip(point.skip).with_cycle(point.cycle_ns)
        report = candidate.run_random(8000, seed=9, years=7.0).report
        print(
            "  %-15s skip=%d T=%.3f -> %.3f ns, %d errors, "
            "%d beyond-budget ops"
            % (
                label,
                point.skip,
                point.cycle_ns,
                report.average_latency_ns,
                report.error_count,
                report.deep_retry_ops,
            )
        )
    print()
    print(
        "Selecting at the lifetime target trades a little fresh latency "
        "for a point that stays clean after aging -- the paper's "
        "reliability-aware design flow in one call."
    )


if __name__ == "__main__":
    main()
