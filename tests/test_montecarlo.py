"""repro.montecarlo: spec validation, sampler determinism, batched vs
naive pricing identity, shard/jobs/store byte-identity, analytics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.serialize import Summarizable, to_json
from repro.arith.reference import count_zeros
from repro.core.ahl import skip_candidates
from repro.errors import ConfigError
from repro.experiments.scheduler import shard_ranges
from repro.experiments.store import ArtifactStore
from repro.montecarlo import (
    CorrelatedVthSampler,
    MonteCarloResult,
    MonteCarloSpec,
    PopulationReductions,
    analyze_population,
    price_population,
    price_population_naive,
    run_montecarlo,
    suffix_max,
    tune_guardband,
    yield_for_skip,
)
from repro.timing.variation import (
    ProcessVariation,
    YieldReport,
    yield_analysis,
)
from repro.workloads.generators import uniform_operands

WIDTH = 4
SKIP = 1


@pytest.fixture(scope="module")
def spec():
    return MonteCarloSpec.from_overrides(
        num_dies=6,
        years=(0.0, 5.0),
        clock_fractions=(0.8, 1.0, 1.2),
        num_patterns=64,
        die_chunk=4,
        seed=7,
    )


@pytest.fixture(scope="module")
def priced(ctx, spec):
    """Factory + stream + batched reductions shared by the module."""
    factory = ctx.factory(WIDTH, "column")
    md, mr = uniform_operands(WIDTH, spec.num_patterns, spec.stream_seed)
    stimulus = {"md": md, "mr": mr}
    zeros = count_zeros(md, WIDTH)
    clock_ns = (0.6, 0.8, 1.0)
    sampler = CorrelatedVthSampler(len(factory.netlist.cells), spec)
    reductions = price_population(
        factory, sampler, spec, stimulus, zeros, WIDTH, SKIP, clock_ns
    )
    return {
        "factory": factory,
        "stimulus": stimulus,
        "zeros": zeros,
        "clock_ns": clock_ns,
        "sampler": sampler,
        "reductions": reductions,
    }


def _arrays_equal(a: PopulationReductions, b: PopulationReductions):
    for field in (
        "crit_ns", "bucket_max_ns", "one_violations", "one_deep",
        "deep_ops", "deep_cycles",
    ):
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


class TestSpec:
    def test_unknown_field_did_you_mean(self):
        with pytest.raises(ConfigError, match="num_dies"):
            MonteCarloSpec.from_overrides(num_dise=5)

    def test_replace_validates_names(self, spec):
        with pytest.raises(ConfigError, match="seed"):
            spec.replace(sead=1)

    def test_replace_revalidates_values(self, spec):
        with pytest.raises(ConfigError):
            spec.replace(num_dies=0)

    @pytest.mark.parametrize(
        "bad",
        [
            {"num_dies": 0},
            {"sigma_global_v": -0.1},
            {"correlation_length": 0.0},
            {"max_shift_v": 0.0},
            {"years": ()},
            {"years": (5.0, 0.0)},
            {"years": (-1.0,)},
            {"clock_fractions": (1.0, 0.5)},
            {"clock_fractions": (0.0,)},
            {"num_patterns": 0},
            {"die_chunk": 0},
            {"target_yield": 0.0},
            {"target_yield": 1.5},
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            MonteCarloSpec.from_overrides(**bad)

    def test_fingerprint_ignores_die_chunk(self, spec):
        assert (
            spec.replace(die_chunk=1).fingerprint() == spec.fingerprint()
        )
        assert spec.replace(seed=8).fingerprint() != spec.fingerprint()
        json.dumps(spec.fingerprint())  # JSON-ready

    def test_stream_seed_offset(self, spec):
        assert spec.stream_seed != spec.seed


class TestSampler:
    def test_deterministic(self, spec):
        a = CorrelatedVthSampler(40, spec).sample(0, spec.num_dies)
        b = CorrelatedVthSampler(40, spec).sample(0, spec.num_dies)
        assert np.array_equal(a, b)

    def test_shard_invariant(self, spec):
        """Die d's shifts never depend on which shard samples it."""
        sampler = CorrelatedVthSampler(40, spec)
        whole = sampler.sample(0, spec.num_dies)
        parts = [
            sampler.sample(lo, hi)
            for lo, hi in shard_ranges(spec.num_dies, 3)
        ]
        assert np.array_equal(whole, np.concatenate(parts))
        assert np.array_equal(whole[2], sampler.sample_die(2))

    def test_seed_changes_population(self, spec):
        a = CorrelatedVthSampler(40, spec).sample(0, 4)
        b = CorrelatedVthSampler(40, spec.replace(seed=99)).sample(0, 4)
        assert not np.array_equal(a, b)

    def test_clipped_and_shaped(self, spec):
        shifts = CorrelatedVthSampler(40, spec).sample(0, 4)
        assert shifts.shape == (4, 40)
        assert np.all(np.abs(shifts) <= spec.max_shift_v)

    def test_dies_differ(self, spec):
        sampler = CorrelatedVthSampler(40, spec)
        assert not np.array_equal(
            sampler.sample_die(0), sampler.sample_die(1)
        )


class TestPricing:
    def test_batched_matches_naive(self, priced, spec):
        naive = price_population_naive(
            priced["factory"],
            priced["sampler"],
            spec,
            priced["stimulus"],
            priced["zeros"],
            WIDTH,
            SKIP,
            priced["clock_ns"],
        )
        _arrays_equal(priced["reductions"], naive)

    def test_chunking_invariant(self, priced, spec):
        """die_chunk batches work without changing a single bit."""
        rechunked = price_population(
            priced["factory"],
            priced["sampler"],
            spec.replace(die_chunk=1),
            priced["stimulus"],
            priced["zeros"],
            WIDTH,
            SKIP,
            priced["clock_ns"],
        )
        _arrays_equal(priced["reductions"], rechunked)

    def test_shard_concat_identity(self, priced, spec):
        shards = [
            price_population(
                priced["factory"],
                priced["sampler"],
                spec,
                priced["stimulus"],
                priced["zeros"],
                WIDTH,
                SKIP,
                priced["clock_ns"],
                die_range=(lo, hi),
            )
            for lo, hi in shard_ranges(spec.num_dies, 3)
        ]
        merged = PopulationReductions.concat(shards)
        _arrays_equal(priced["reductions"], merged)

    def test_bad_die_range_rejected(self, priced, spec):
        with pytest.raises(ConfigError):
            price_population(
                priced["factory"],
                priced["sampler"],
                spec,
                priced["stimulus"],
                priced["zeros"],
                WIDTH,
                SKIP,
                priced["clock_ns"],
                die_range=(0, spec.num_dies + 1),
            )

    def test_payload_round_trip(self, priced):
        red = priced["reductions"]
        back = PopulationReductions.from_payload(red.to_payload())
        assert back._meta() == red._meta()
        _arrays_equal(red, back)

    def test_store_round_trip(self, priced, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        red = priced["reductions"]
        key = {"probe": "population"}
        store.save("population", key, red.to_payload())
        back = PopulationReductions.from_payload(
            store.load("population", key)
        )
        assert back._meta() == red._meta()
        _arrays_equal(red, back)

    def test_concat_rejects_grid_mismatch(self, priced):
        red = priced["reductions"]
        other = PopulationReductions.from_payload(red.to_payload())
        other.__dict__["skip"] = SKIP + 1
        with pytest.raises(ConfigError):
            PopulationReductions.concat([red, other])


class TestAnalytics:
    def test_suffix_max(self):
        bucket = np.array([[[1.0, 3.0, 2.0, 0.0]]])
        assert np.array_equal(
            suffix_max(bucket), np.array([[[3.0, 3.0, 2.0, 0.0]]])
        )

    def test_yield_monotone_in_clock(self, priced, spec):
        """A longer period can only help timing yield."""
        surf = yield_for_skip(priced["reductions"], SKIP)
        assert surf.shape == (spec.num_years, len(priced["clock_ns"]))
        assert np.all(np.diff(surf, axis=1) >= 0.0)
        assert np.all((0.0 <= surf) & (surf <= 1.0))

    def test_yield_monotone_in_skip(self, priced):
        """Raising Skip-n only moves patterns from one to two cycles,
        so timing yield is non-decreasing in the skip threshold."""
        prev = yield_for_skip(priced["reductions"], 0)
        for skip in skip_candidates(WIDTH):
            cur = yield_for_skip(priced["reductions"], skip)
            assert np.all(cur >= prev)
            prev = cur

    def test_guardband_minimality(self, priced):
        red = priced["reductions"]
        skip_grid, yield_grid = tune_guardband(red, target_yield=0.5)
        for (j, c), skip in np.ndenumerate(skip_grid):
            if skip < 0:
                assert yield_grid[j, c] < 0.5
                continue
            assert yield_for_skip(red, int(skip))[j, c] >= 0.5
            if skip > 0:
                assert yield_for_skip(red, int(skip) - 1)[j, c] < 0.5

    def test_result_round_trip(self, priced, spec):
        result = analyze_population(priced["reductions"], spec, 1.0)
        assert isinstance(result, Summarizable)
        back = MonteCarloResult.from_dict(result.to_dict())
        assert back.to_dict() == result.to_dict()
        assert to_json(back) == to_json(result)
        summary = result.summary()
        assert summary["num_dies"] == spec.num_dies
        json.dumps(summary)


class TestRunner:
    def test_jobs_bit_identical(self, ctx):
        spec_kw = dict(width=WIDTH, kind="column", context=ctx)
        spec = MonteCarloSpec.from_overrides(
            num_dies=6,
            years=(0.0, 4.0),
            clock_fractions=(0.9, 1.1),
            num_patterns=48,
            die_chunk=2,
            seed=3,
        )
        serial = run_montecarlo(spec, jobs=1, **spec_kw)
        sharded = run_montecarlo(spec, jobs=2, **spec_kw)
        assert to_json(sharded) == to_json(serial)

    def test_store_warm_byte_identical(self, ctx, tmp_path):
        spec = MonteCarloSpec.from_overrides(
            num_dies=4,
            years=(0.0, 6.0),
            clock_fractions=(0.9, 1.1),
            num_patterns=48,
            die_chunk=3,
            seed=5,
        )
        kw = dict(
            width=WIDTH,
            kind="column",
            technology=ctx.technology,
            config=ctx.config,
            characterize_patterns=ctx.characterize_patterns,
        )
        cold = run_montecarlo(
            spec, store=str(tmp_path / "store"), **kw
        )
        store = ArtifactStore(str(tmp_path / "store"))
        warm = run_montecarlo(spec, store=store, **kw)
        assert to_json(warm) == to_json(cold)
        assert store.counters["population"]["hits"] == 1
        assert store.counters["population"]["writes"] == 0

    def test_rejects_bad_kind_and_jobs(self, ctx, spec):
        with pytest.raises(ConfigError):
            run_montecarlo(spec, kind="diagonal", context=ctx)
        with pytest.raises(ConfigError):
            run_montecarlo(spec, jobs=0, context=ctx)
        with pytest.raises(ConfigError):
            run_montecarlo(spec, width=WIDTH, skip=WIDTH, context=ctx)


class TestSkipCandidates:
    def test_legal_range(self):
        assert list(skip_candidates(4)) == [0, 1, 2, 3]

    def test_rejects_degenerate_width(self):
        with pytest.raises(ConfigError):
            skip_candidates(0)


class TestShardRanges:
    def test_partition(self):
        ranges = shard_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        assert sum(hi - lo for lo, hi in ranges) == 10
        assert all(
            ranges[i][1] == ranges[i + 1][0]
            for i in range(len(ranges) - 1)
        )

    def test_more_shards_than_items(self):
        assert shard_ranges(2, 5) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert shard_ranges(0, 4) == []


class TestUnifiedCLI:
    """python -m repro dispatch (the montecarlo-facing paths; the
    sub-CLIs have their own suites)."""

    def test_help_lists_commands(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        for command in ("experiments", "faults", "service", "mc"):
            assert command in out

    def test_unknown_command_did_you_mean(self, capsys):
        from repro.__main__ import main

        assert main(["experimets"]) == 2
        assert "'experiments'" in capsys.readouterr().err

    def test_mc_config_error_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["mc", "--dies", "0"]) == 2
        assert "num_dies" in capsys.readouterr().err

    def test_mc_end_to_end_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out_path = str(tmp_path / "mc.json")
        code = main([
            "mc", "--dies", "3", "--width", "4", "--years", "0,5",
            "--clocks", "0.9,1.1", "--patterns", "32", "--json", out_path,
        ])
        assert code == 0
        assert "Monte Carlo population" in capsys.readouterr().out
        with open(out_path) as fh:
            data = json.load(fh)
        assert data["num_dies"] == 3

    def test_legacy_shim_importable(self):
        """The deprecated per-module entry points must keep their
        main() callables (the shim only adds a stderr note)."""
        from repro.experiments.__main__ import main as experiments_main
        from repro.faults.__main__ import main as faults_main

        assert callable(experiments_main)
        assert callable(faults_main)


class TestYieldAnalysisSpec:
    """yield_analysis accepts a MonteCarloSpec; legacy kwargs survive
    behind a deprecation wrapper."""

    @pytest.fixture(scope="class")
    def arch(self):
        from repro.core.architecture import AgingAwareMultiplier

        return AgingAwareMultiplier.build(
            width=4, kind="column", characterize_patterns=300
        )

    def test_spec_path(self, arch):
        spec = MonteCarloSpec.from_overrides(
            num_dies=5, num_patterns=200, seed=31
        )
        report = yield_analysis(arch, spec)
        assert isinstance(report, YieldReport)
        assert report.num_dies == 5

    def test_legacy_kwargs_deprecated(self, arch):
        with pytest.deprecated_call():
            report = yield_analysis(
                arch, num_dies=4, num_patterns=200, seed=31
            )
        assert report.num_dies == 4

    def test_spec_plus_legacy_rejected(self, arch):
        spec = MonteCarloSpec.from_overrides(num_dies=4)
        with pytest.raises(ConfigError):
            yield_analysis(arch, spec, num_dies=4)

    def test_unknown_legacy_kwarg(self, arch):
        with pytest.raises(ConfigError, match="num_dies"):
            yield_analysis(arch, num_dise=4)

    def test_from_spec_scales_sigmas(self):
        spec = MonteCarloSpec.from_overrides(
            sigma_global_v=0.02, sigma_spatial_v=0.0, sigma_random_v=0.0
        )
        variation = ProcessVariation.from_spec(spec)
        assert variation.sigma_global > 0.0
        assert variation.sigma_local == 0.0

    def test_yield_report_round_trip(self, arch):
        spec = MonteCarloSpec.from_overrides(
            num_dies=4, num_patterns=200, seed=31
        )
        report = yield_analysis(arch, spec)
        assert isinstance(report, Summarizable)
        back = YieldReport.from_dict(report.to_dict())
        assert to_json(back) == to_json(report)
        json.dumps(report.summary())
