"""Wallace-tree and radix-4 Booth baselines."""

import numpy as np
import pytest

from repro.arith import (
    array_multiplier,
    booth_multiplier,
    dadda_multiplier,
    golden_products,
    wallace_multiplier,
)
from repro.arith.booth import booth_digit_values
from repro.errors import NetlistError
from repro.timing import CompiledCircuit, StaticTiming
from repro.workloads import uniform_operands


class TestBoothRecoding:
    @pytest.mark.parametrize("width", [2, 4, 6, 8])
    def test_digits_reconstruct_value(self, width):
        for value in range(1 << width):
            digits = booth_digit_values(value, width)
            assert sum(d * 4**i for i, d in enumerate(digits)) == value

    def test_digit_range(self):
        for value in range(256):
            assert all(
                -2 <= d <= 2 for d in booth_digit_values(value, 8)
            )


@pytest.mark.parametrize(
    "generator", [wallace_multiplier, booth_multiplier, dadda_multiplier]
)
class TestBaselineCorrectness:
    def test_exhaustive_4bit(self, generator):
        netlist = generator(4)
        circuit = CompiledCircuit(netlist)
        a = np.repeat(np.arange(16, dtype=np.uint64), 16)
        b = np.tile(np.arange(16, dtype=np.uint64), 16)
        result = circuit.run({"md": a, "mr": b})
        assert np.array_equal(result.outputs["p"], golden_products(a, b, 4))

    def test_exhaustive_6bit(self, generator):
        netlist = generator(6)
        circuit = CompiledCircuit(netlist)
        a = np.repeat(np.arange(64, dtype=np.uint64), 64)
        b = np.tile(np.arange(64, dtype=np.uint64), 64)
        result = circuit.run({"md": a, "mr": b})
        assert np.array_equal(result.outputs["p"], golden_products(a, b, 6))

    def test_random_16bit(self, generator):
        netlist = generator(16)
        circuit = CompiledCircuit(netlist)
        md, mr = uniform_operands(16, 2000, seed=61)
        result = circuit.run({"md": md, "mr": mr})
        assert np.array_equal(
            result.outputs["p"], golden_products(md, mr, 16)
        )

    def test_width_one_rejected(self, generator):
        with pytest.raises(NetlistError):
            generator(1)


class TestBaselineStructure:
    def test_booth_halves_partial_product_rows(self):
        """Radix-4 recoding: fewer AND-plane cells than the array."""
        am = array_multiplier(16)
        booth = booth_multiplier(16)
        am_ands = sum(
            1 for c in am.cells if c.name.startswith("pp_")
        )
        assert am_ands == 256
        # Booth has no 256-cell AND plane; its magnitude muxing is
        # bounded by (width/2 + 1) * (width + 1) rows of select logic.
        assert len(booth.cells) < len(am.cells) * 1.5

    def test_wallace_reduction_is_logarithmic(self):
        """The carry-save reduction (everything before the final CPA)
        grows logarithmically: doubling the width adds only a couple of
        compression levels, while the array's CSA rows double."""
        depth8 = wallace_multiplier(8).max_logic_depth()
        depth16 = wallace_multiplier(16).max_logic_depth()
        am8 = array_multiplier(8).max_logic_depth()
        am16 = array_multiplier(16).max_logic_depth()
        # Depth growth 8 -> 16 (CPA dominated): well below the array's.
        assert (depth16 - depth8) < (am16 - am8)

    def test_dadda_depth_beats_wallace(self):
        """The height-targeted schedule avoids the carry ripple of the
        greedy column-wise one."""
        assert (
            dadda_multiplier(16).max_logic_depth()
            < wallace_multiplier(16).max_logic_depth()
        )

    def test_dadda_heights_sequence(self):
        from repro.arith.reduction import dadda_heights

        assert dadda_heights(16) == [13, 9, 6, 4, 3, 2]
        assert dadda_heights(3) == [2]
        assert dadda_heights(2) == []

    def test_tight_delay_distribution(self):
        """Tree multipliers have a much tighter per-pattern delay spread
        than the bypassing designs -- why they host variable latency
        poorly (ext_baselines)."""
        from repro.arith import column_bypass_multiplier

        md, mr = uniform_operands(16, 1500, seed=67)
        spreads = {}
        for generator in (wallace_multiplier, column_bypass_multiplier):
            netlist = generator(16)
            delays = CompiledCircuit(netlist).run(
                {"md": md, "mr": mr}
            ).delays
            spreads[netlist.name] = np.quantile(delays, 0.95) / np.quantile(
                delays, 0.5
            )
        assert spreads["wallace-16x16"] < spreads["cb-16x16"]
