"""Aging indicator and adaptive hold logic."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.ahl import AdaptiveHoldLogic, ahl_netlist
from repro.core.aging_indicator import AgingIndicator
from repro.errors import ConfigError, SimulationError
from repro.timing import CompiledCircuit


class TestAgingIndicator:
    def test_starts_fresh(self):
        indicator = AgingIndicator()
        assert not indicator.aged
        assert indicator.aged_at_op == -1

    def test_flips_on_threshold(self):
        indicator = AgingIndicator()
        # 10 errors in the first 100-op window (the paper's 10%).
        for k in range(100):
            indicator.record(k < 10)
        assert indicator.aged
        assert indicator.aged_at_op == 100
        assert indicator.windows_observed == 1

    def test_stays_fresh_below_threshold(self):
        indicator = AgingIndicator()
        for k in range(100):
            indicator.record(k < 9)
        assert not indicator.aged

    def test_sticky_by_default(self):
        indicator = AgingIndicator()
        indicator.record_window(100, 50)
        assert indicator.aged
        indicator.record_window(100, 0)
        assert indicator.aged  # the paper's monotone indicator

    def test_non_sticky_relaxes(self):
        config = SimulationConfig(indicator_sticky=False)
        indicator = AgingIndicator(config)
        indicator.record_window(100, 50)
        assert indicator.aged
        indicator.record_window(100, 0)
        assert not indicator.aged

    def test_window_boundary_enforced(self):
        indicator = AgingIndicator()
        indicator.record_window(60, 0)
        with pytest.raises(SimulationError):
            indicator.record_window(60, 0)

    def test_partial_windows_accumulate(self):
        indicator = AgingIndicator()
        indicator.record_window(50, 5)
        indicator.record_window(50, 5)
        assert indicator.aged  # 10 errors across the combined window

    def test_invalid_window_counts(self):
        indicator = AgingIndicator()
        with pytest.raises(SimulationError):
            indicator.record_window(10, 11)

    def test_reset(self):
        indicator = AgingIndicator()
        indicator.record_window(100, 99)
        indicator.reset()
        assert not indicator.aged
        assert indicator.windows_observed == 0


class TestAdaptiveHoldLogic:
    def test_starts_on_relaxed_block(self):
        ahl = AdaptiveHoldLogic(16, 7)
        assert ahl.active_block.skip == 7

    def test_switches_after_error_burst(self):
        ahl = AdaptiveHoldLogic(16, 7)
        ahl.observe(100, 15)
        assert ahl.active_block.skip == 8

    def test_traditional_never_switches(self):
        ahl = AdaptiveHoldLogic(16, 7, adaptive=False)
        ahl.observe(100, 100)
        assert ahl.active_block.skip == 7

    def test_decide_uses_active_block(self):
        ahl = AdaptiveHoldLogic(16, 7)
        operand = np.array([0b111111111_0000000], dtype=np.uint64)  # 7 zeros
        assert ahl.decide(operand).tolist() == [True]
        ahl.observe(100, 15)
        assert ahl.decide(operand).tolist() == [False]

    def test_skip_must_leave_room(self):
        with pytest.raises(ConfigError):
            AdaptiveHoldLogic(16, 16)

    def test_reset(self):
        ahl = AdaptiveHoldLogic(16, 7)
        ahl.observe(100, 15)
        ahl.reset()
        assert ahl.active_block.skip == 7


class TestAhlNetlist:
    def test_outputs_and_sequential_bits(self):
        nl, seq_bits = ahl_netlist(16, 7)
        assert set(nl.output_ports) == {"one_cycle", "gating_n"}
        # gating DFF + indicator flag + two counters sized by the window.
        assert seq_bits == 1 + 1 + 7 + 7

    def test_mux_selects_between_blocks(self):
        nl, _ = ahl_netlist(8, 4)
        circuit = CompiledCircuit(nl)
        values = np.arange(256, dtype=np.uint64)
        zeros = np.array([8 - bin(int(v)).count("1") for v in values])
        for aging, skip in ((0, 4), (1, 5)):
            result = circuit.run(
                {
                    "x": values,
                    "aging": np.full(256, aging, dtype=np.uint64),
                    "q": np.zeros(256, dtype=np.uint64),
                }
            )
            assert np.array_equal(
                result.outputs["one_cycle"].astype(bool), zeros >= skip
            )

    def test_gating_is_or_of_decision_and_q(self):
        nl, _ = ahl_netlist(8, 4)
        circuit = CompiledCircuit(nl)
        values = np.arange(256, dtype=np.uint64)
        result = circuit.run(
            {
                "x": values,
                "aging": np.zeros(256, dtype=np.uint64),
                "q": np.ones(256, dtype=np.uint64),
            }
        )
        assert np.all(result.outputs["gating_n"] == 1)
