"""System-level throughput / queueing simulation."""

import numpy as np
import pytest

from repro.core import AgingAwareMultiplier
from repro.core.throughput import (
    ThroughputReport,
    architecture_service_times,
    max_sustainable_rate,
    simulate_queue,
)
from repro.errors import ConfigError, SimulationError
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def arch():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


class TestSimulateQueue:
    def test_underloaded_no_waiting(self):
        service = np.full(100, 1.0)
        report = simulate_queue(service, arrival_period_ns=2.0)
        assert report.dropped_jobs == 0
        assert report.mean_latency_ns == pytest.approx(1.0)
        assert report.mean_queue_depth == pytest.approx(0.0)
        assert report.utilization == pytest.approx(0.5, abs=0.02)

    def test_saturated_throughput_is_service_rate(self):
        service = np.full(500, 1.0)
        report = simulate_queue(service, arrival_period_ns=0.5,
                                queue_capacity=10)
        # Server can only finish one job per ns.
        assert report.throughput_per_ns == pytest.approx(1.0, abs=0.05)
        assert report.dropped_jobs > 0
        assert report.utilization == pytest.approx(1.0, abs=0.01)

    def test_latency_grows_with_load(self):
        rng = np.random.default_rng(5)
        service = rng.uniform(0.5, 1.5, 400)
        light = simulate_queue(service, arrival_period_ns=2.0)
        heavy = simulate_queue(service, arrival_period_ns=1.05)
        assert heavy.mean_latency_ns > light.mean_latency_ns
        assert heavy.p95_latency_ns >= heavy.mean_latency_ns

    def test_queue_capacity_bounds_depth(self):
        service = np.full(300, 2.0)
        report = simulate_queue(service, arrival_period_ns=0.5,
                                queue_capacity=4)
        assert report.mean_queue_depth <= 4.0
        assert report.accepted_jobs + report.dropped_jobs == 300

    def test_heap_matches_list_reference(self):
        """The heapq completion queue is a pure speedup: every statistic
        must match the O(n * depth) list-rebuild implementation it
        replaced, on a seeded workload that exercises drops."""

        def reference(service, arrival_period_ns, queue_capacity):
            completions, latencies, depths = [], [], []
            dropped, server_free_at, busy_ns = 0, 0.0, 0.0
            in_system = []
            for k in range(service.size):
                arrival = k * arrival_period_ns
                in_system = [t for t in in_system if t > arrival]
                depths.append(len(in_system))
                if len(in_system) >= queue_capacity:
                    dropped += 1
                    continue
                finish = max(arrival, server_free_at) + service[k]
                busy_ns += service[k]
                server_free_at = finish
                in_system.append(finish)
                completions.append(finish)
                latencies.append(finish - arrival)
            horizon = max(completions)
            latencies = np.asarray(latencies)
            return ThroughputReport(
                num_jobs=service.size,
                throughput_per_ns=len(completions) / horizon,
                mean_latency_ns=float(latencies.mean()),
                p95_latency_ns=float(np.quantile(latencies, 0.95)),
                mean_queue_depth=float(np.mean(depths)),
                dropped_jobs=dropped,
                utilization=float(busy_ns / horizon),
            )

        rng = np.random.default_rng(17)
        service = rng.uniform(0.5, 6.0, 2000)
        for period, capacity in ((3.5, 64), (1.5, 8), (0.75, 3)):
            got = simulate_queue(service, period, capacity)
            want = reference(service, period, capacity)
            assert got == want
            if capacity <= 8:
                assert got.dropped_jobs > 0  # drops were exercised

    def test_validation(self):
        with pytest.raises(SimulationError):
            simulate_queue(np.array([]), 1.0)
        with pytest.raises(SimulationError):
            simulate_queue(np.array([0.0]), 1.0)
        with pytest.raises(ConfigError):
            simulate_queue(np.array([1.0]), 0.0)
        with pytest.raises(ConfigError):
            simulate_queue(np.array([1.0]), 1.0, queue_capacity=0)


class TestArchitectureServiceTimes:
    def test_consistent_with_report(self, arch):
        md, mr = uniform_operands(8, 800, seed=31)
        service = architecture_service_times(arch, md, mr)
        report = arch.run_patterns(md, mr).report
        assert service.sum() == pytest.approx(
            report.total_cycles * arch.cycle_ns
        )
        # Service times are whole cycles.
        assert np.allclose(service / arch.cycle_ns,
                           np.round(service / arch.cycle_ns))

    def test_variable_latency_sustains_higher_rate_than_fixed(self, arch):
        """The intro's throughput claim, end to end: the VL unit accepts
        a faster job stream than the fixed-latency unit."""
        md, mr = uniform_operands(8, 1500, seed=37)
        vl_service = architecture_service_times(arch, md, mr)
        fixed_service = np.full(1500, arch.critical_path_ns())
        vl_rate = max_sustainable_rate(vl_service)
        fixed_rate = max_sustainable_rate(fixed_service)
        assert vl_rate > fixed_rate

    def test_aged_rate_does_not_collapse(self, arch):
        md, mr = uniform_operands(8, 1000, seed=41)
        fresh = max_sustainable_rate(
            architecture_service_times(arch, md, mr, years=0.0)
        )
        aged = max_sustainable_rate(
            architecture_service_times(arch, md, mr, years=7.0)
        )
        assert aged > 0.8 * fresh
