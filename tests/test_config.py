"""Technology and simulation configuration validation."""

import math

import pytest

from repro.config import (
    BOLTZMANN_EV,
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SECONDS_PER_YEAR,
    SimulationConfig,
    Technology,
)
from repro.errors import ConfigError


class TestTechnology:
    def test_defaults_are_32nm_highk(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.vdd == pytest.approx(0.9)
        assert tech.temperature == pytest.approx(398.15)  # 125 degC
        assert tech.n_exponent == pytest.approx(1.0 / 6.0)
        assert tech.ea == pytest.approx(0.12)  # paper Section II-D

    def test_gate_overdrives(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.gate_overdrive_p == pytest.approx(tech.vdd - tech.vth_p)
        assert tech.gate_overdrive_n == pytest.approx(tech.vdd - tech.vth_n)

    def test_oxide_field_definition(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.oxide_field == pytest.approx(
            tech.gate_overdrive_p / tech.tox
        )

    def test_thermal_factor_is_arrhenius(self):
        tech = DEFAULT_TECHNOLOGY
        expected = math.exp(-tech.ea / (BOLTZMANN_EV * tech.temperature))
        assert tech.thermal_factor() == pytest.approx(expected)

    def test_thermal_factor_increases_with_temperature(self):
        cold = DEFAULT_TECHNOLOGY.replace(temperature=300.0)
        assert DEFAULT_TECHNOLOGY.thermal_factor() > cold.thermal_factor()

    def test_replace_returns_new_instance(self):
        tech = DEFAULT_TECHNOLOGY.replace(vdd=1.0)
        assert tech.vdd == 1.0
        assert DEFAULT_TECHNOLOGY.vdd == pytest.approx(0.9)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("vdd", 0.0),
            ("vdd", -1.0),
            ("vth_p", 0.0),
            ("vth_p", 0.95),
            ("vth_n", -0.1),
            ("temperature", 0.0),
            ("n_exponent", 0.0),
            ("n_exponent", 1.0),
            ("time_unit_ns", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DEFAULT_TECHNOLOGY.replace(**{field: value})

    def test_seconds_per_year(self):
        assert SECONDS_PER_YEAR == pytest.approx(365.25 * 86400)


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = DEFAULT_SIM_CONFIG
        # Section IV-B: 1 Razor cycle + 2 re-execution cycles.
        assert config.razor_penalty_cycles == 3
        # Section IV-C: 10 errors per 100 operations.
        assert config.indicator_window == 100
        assert config.indicator_threshold == 10
        assert config.indicator_sticky is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"razor_penalty_cycles": 0},
            {"indicator_window": 0},
            {"indicator_threshold": -1},
            {"indicator_threshold": 101},
            {"shadow_skew_fraction": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)

    def test_threshold_may_equal_window(self):
        config = SimulationConfig(indicator_threshold=100)
        assert config.indicator_threshold == 100
