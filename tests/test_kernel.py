"""Levelized SoA kernel + unique-stimulus folding equivalence suite.

The structure-of-arrays chunk runner (``kernel="soa"``, the default),
the JIT backend (``kernel="numba"``) and the reference per-cell
interpreter (``kernel="percell"``) must be bit-identical for every
observable the ISSUE names: output values, per-pattern delays, bit
arrivals, toggle counts / signal probabilities, across chunk sizes,
initial conditions, every fault-hook model and every recovery policy.
``switched_caps`` is the one deliberate exception *across kernels*:
each backend accumulates capacitance in a different float association
(values identical to ~1 ulp, asserted with ``allclose``); within one
kernel it stays exact, which the folding and chunking tests assert.

When numba is not installed the module-level fixture flips the JIT
module into pure-python mode, so ``kernel="numba"`` still executes the
JIT kernel bodies (through the interpreter) instead of silently
collapsing onto the SoA fallback -- the equivalence matrix runs
everywhere, and runs the real compiled kernels wherever numba exists.
"""

import numpy as np
import pytest

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.core.architecture import AgingAwareMultiplier
from repro.errors import ConfigError, SimulationError
from repro.faults.injector import compile_with_faults
from repro.faults.models import DelayFault, StuckAtFault, TransientBitFlip
from repro.timing import (
    ArrivalReplay,
    CompiledCircuit,
    ValuePlaneCache,
    auto_chunk_size,
    build_value_plane,
    fold_stimulus,
    normalize_kernel,
    unfold_stream,
)
from repro.timing import jit
from repro.timing import replay as replay_mod
from repro.timing.engine import KERNELS
from repro.timing.fold import MIN_FOLD_PATTERNS
from repro.workloads import sparse_fir_stream, uniform_operands


@pytest.fixture(scope="module", autouse=True)
def _exercise_jit_path():
    # Without numba, run the JIT kernels as plain python so the
    # ``kernel="numba"`` rows of the matrix below actually test the
    # kernel bodies.  With numba installed this is a no-op and the
    # compiled kernels run.
    previous = jit.force_python(not jit.HAVE_NUMBA)
    yield
    jit.force_python(previous)


@pytest.fixture(scope="module")
def cb8():
    return column_bypass_multiplier(8)


@pytest.fixture(scope="module")
def stream8():
    md, mr = uniform_operands(8, 600, seed=3)
    return {"md": md, "mr": mr}


@pytest.fixture(scope="module")
def foldable8():
    md, mr = sparse_fir_stream(8, 600, seed=1)
    return {"md": md, "mr": mr}


def assert_same(got, want, bit_arrivals=False, stats=False,
                caps_exact=True):
    assert got.num_patterns == want.num_patterns
    for name, values in want.outputs.items():
        assert np.array_equal(got.outputs[name], values)
    assert np.array_equal(got.delays, want.delays)
    if caps_exact:
        assert np.array_equal(got.switched_caps, want.switched_caps)
    else:
        assert np.allclose(
            got.switched_caps, want.switched_caps, rtol=1e-12, atol=1e-9
        )
    if bit_arrivals:
        for name, matrix in want.bit_arrivals.items():
            assert np.array_equal(got.bit_arrivals[name], matrix)
    if stats:
        assert np.array_equal(got.signal_prob, want.signal_prob)
        assert np.array_equal(got.toggle_counts, want.toggle_counts)


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    @pytest.mark.parametrize("mode", ["inertial", "floating"])
    def test_kernels_match_percell_all_observables(
        self, cb8, stream8, mode, kernel
    ):
        kwargs = dict(collect_bit_arrivals=True, collect_net_stats=True)
        want = CompiledCircuit(cb8, mode=mode, kernel="percell").run(
            stream8, **kwargs
        )
        got = CompiledCircuit(cb8, mode=mode, kernel=kernel).run(
            stream8, **kwargs
        )
        assert_same(got, want, bit_arrivals=True, stats=True,
                    caps_exact=False)

    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    @pytest.mark.parametrize("chunk", [64, 136, 10_000])
    def test_chunked_matches_unchunked(self, cb8, stream8, chunk, kernel):
        circuit = CompiledCircuit(cb8, kernel=kernel)
        want = circuit.run(stream8, collect_bit_arrivals=True,
                           collect_net_stats=True)
        got = circuit.run(stream8, collect_bit_arrivals=True,
                          collect_net_stats=True, chunk_size=chunk)
        assert_same(got, want, bit_arrivals=True, stats=True)

    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    def test_initial_condition(self, cb8, kernel):
        stim = {"md": [7, 7, 3, 3], "mr": [5, 5, 9, 9]}
        initial = {"md": 0, "mr": 255}
        want = CompiledCircuit(cb8, kernel="percell").run(
            stim, initial=initial, collect_bit_arrivals=True
        )
        got = CompiledCircuit(cb8, kernel=kernel).run(
            stim, initial=initial, collect_bit_arrivals=True
        )
        assert_same(got, want, bit_arrivals=True, caps_exact=False)

    def test_unknown_kernel_rejected(self, cb8):
        assert KERNELS == ("soa", "percell", "numba")
        with pytest.raises(SimulationError):
            CompiledCircuit(cb8, kernel="simd")

    def test_normalize_kernel_did_you_mean(self):
        assert normalize_kernel("numba") == "numba"
        for name in KERNELS:
            assert normalize_kernel(name) == name
        with pytest.raises(ConfigError) as err:
            normalize_kernel("nunba")
        assert "numba" in str(err.value)  # did-you-mean hint
        with pytest.raises(ConfigError) as err:
            normalize_kernel("percel")
        assert "percell" in str(err.value)

    def test_cell_delays_cached_and_frozen(self, cb8):
        circuit = CompiledCircuit(cb8)
        delays = circuit.cell_delays_ns()
        assert circuit.cell_delays_ns() is delays
        with pytest.raises(ValueError):
            delays[0] = 1.0

    def test_default_reach_mask_cached(self, cb8):
        circuit = CompiledCircuit(cb8)
        first = circuit.output_reach_mask()
        assert circuit.output_reach_mask() is first


class TestFaultKernelEquivalence:
    def faults_for(self, cb8, kind):
        if kind == "sa0":
            return [StuckAtFault(net=cb8.cells[10].output, value=0)]
        if kind == "sa1":
            return [StuckAtFault(net=cb8.cells[21].output, value=1)]
        if kind == "seu":
            return [TransientBitFlip(net=cb8.cells[40].output,
                                     rate=0.1, seed=2)]
        return [DelayFault(cell=12, extra_ns=0.4)]

    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    @pytest.mark.parametrize("kind", ["sa0", "sa1", "seu", "delay"])
    def test_every_fault_model_matches_percell(
        self, cb8, stream8, kind, kernel
    ):
        faults = self.faults_for(cb8, kind)
        want = compile_with_faults(cb8, faults, kernel="percell").run(
            stream8, collect_bit_arrivals=True
        )
        got = compile_with_faults(cb8, faults, kernel=kernel).run(
            stream8, collect_bit_arrivals=True
        )
        assert_same(got, want, bit_arrivals=True, caps_exact=False)

    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    def test_multi_fault_chunked(self, cb8, stream8, kernel):
        faults = self.faults_for(cb8, "sa1") + self.faults_for(cb8, "seu")
        want = compile_with_faults(cb8, faults, kernel="percell").run(
            stream8, chunk_size=96
        )
        got = compile_with_faults(cb8, faults, kernel=kernel).run(
            stream8, chunk_size=96
        )
        assert_same(got, want, caps_exact=False)

    @pytest.mark.parametrize(
        "policy", ["strict", "degrade", "detect-only"]
    )
    def test_recovery_policies_see_identical_streams(self, policy):
        arch = AgingAwareMultiplier.build(8)
        md, mr = uniform_operands(8, 300, seed=9)
        streams = {}
        for kernel in KERNELS:
            circuit = CompiledCircuit(
                arch.netlist, arch.technology, kernel=kernel
            )
            streams[kernel] = circuit.run({"md": md, "mr": mr})
        runs = {
            kernel: arch.run_patterns(
                md, mr, stream=streams[kernel], policy=policy
            )
            for kernel in KERNELS
        }
        a = runs["soa"]
        for kernel in KERNELS[1:]:
            b = runs[kernel]
            assert np.array_equal(a.products, b.products)
            assert np.array_equal(a.errors, b.errors)
            assert np.array_equal(a.delays, b.delays)
            assert a.report == b.report


class TestFolding:
    def test_fold_plan_round_trip(self, foldable8):
        plan = fold_stimulus(foldable8)
        assert plan.num_unique < plan.num_patterns
        assert plan.profitable
        assert plan.fold_factor > 1.0
        # Scattering the folded settled halves back must reproduce the
        # stream: pattern k equals unique pattern inverse[k].
        for name in foldable8:
            folded = np.asarray(plan.folded[name])
            full = np.asarray(foldable8[name], dtype=np.uint64)
            assert np.array_equal(folded[1::2][plan.inverse], full)

    @pytest.mark.parametrize("kernel", ["soa", "numba"])
    def test_run_fold_bit_identical(self, cb8, foldable8, kernel):
        circuit = CompiledCircuit(cb8, kernel=kernel)
        want = circuit.run(foldable8, collect_bit_arrivals=True)
        got = circuit.run(foldable8, collect_bit_arrivals=True, fold=True)
        assert_same(got, want, bit_arrivals=True)

    def test_fold_with_initial(self, cb8, foldable8):
        circuit = CompiledCircuit(cb8)
        initial = {"md": 170, "mr": 85}
        want = circuit.run(foldable8, initial=initial)
        got = circuit.run(foldable8, initial=initial, fold=True)
        assert_same(got, want)

    def test_fold_unprofitable_stream_still_exact(self, cb8, stream8):
        circuit = CompiledCircuit(cb8)
        plan = fold_stimulus(stream8)
        assert not plan.profitable  # uniform noise barely repeats
        got = circuit.run(stream8, fold=True)
        assert_same(got, circuit.run(stream8))

    def test_fold_bypassed_for_fault_hooks(self, cb8, foldable8):
        # TransientBitFlip keys off the *global* pattern index, which
        # folding renumbers -- the engine must refuse to fold hooked
        # circuits so flips stay deterministic.
        faults = [TransientBitFlip(net=cb8.cells[40].output,
                                   rate=0.2, seed=7)]
        circuit = compile_with_faults(cb8, faults)
        got = circuit.run(foldable8, fold=True)
        assert_same(got, circuit.run(foldable8))

    def test_fold_bypassed_for_net_stats(self, cb8, foldable8):
        # Per-net stats need per-pattern multiplicity; folding would
        # weight each unique pattern once.
        circuit = CompiledCircuit(cb8)
        got = circuit.run(foldable8, fold=True, collect_net_stats=True)
        want = circuit.run(foldable8, collect_net_stats=True)
        assert_same(got, want, stats=True)

    def test_short_streams_never_fold(self):
        md = np.zeros(MIN_FOLD_PATTERNS - 1, dtype=np.uint64)
        plan = fold_stimulus({"md": md, "mr": md})
        assert not plan.profitable

    def test_unfold_rejects_foreign_result(self, cb8, foldable8):
        circuit = CompiledCircuit(cb8)
        plan = fold_stimulus(foldable8)
        bad = circuit.run(foldable8)  # wrong length: not 2 * num_unique
        with pytest.raises(SimulationError):
            unfold_stream(bad, plan)


class TestReplayKernels:
    def scales_for(self, circuit, k, seed=5):
        rng = np.random.default_rng(seed)
        num_cells = len(circuit.netlist.cells)
        return 1.0 + rng.uniform(0.0, 0.4, (k, num_cells))

    @pytest.mark.parametrize("mode", ["inertial", "floating"])
    def test_replay_kernels_all_match(self, cb8, stream8, mode):
        results = {}
        for kernel in KERNELS:
            circuit = CompiledCircuit(cb8, mode=mode, kernel=kernel)
            plane = build_value_plane(circuit, stream8)
            results[kernel] = ArrivalReplay(circuit, plane).replay(
                self.scales_for(circuit, 3), collect_bit_arrivals=True
            )
        a = results["soa"]
        for kernel in KERNELS[1:]:
            b = results[kernel]
            assert np.array_equal(a.delays, b.delays)
            for name in a.bit_arrivals:
                assert np.array_equal(a.bit_arrivals[name],
                                      b.bit_arrivals[name])

    def test_soa_replay_chunking_exact(self, cb8, stream8, monkeypatch):
        circuit = CompiledCircuit(cb8)
        plane = build_value_plane(circuit, stream8)
        scales = self.scales_for(circuit, 2)
        whole = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        # Shrink the memory target so the 600-pattern replay must run
        # in many byte-aligned chunks, down to the floor of 8.
        monkeypatch.setattr(
            replay_mod, "REPLAY_CHUNK_TARGET_BYTES", 1
        )
        assert replay_mod._replay_chunk_size(plane.num_nets, 2) == 8
        chunked = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        assert np.array_equal(whole.delays, chunked.delays)
        for name in whole.bit_arrivals:
            assert np.array_equal(whole.bit_arrivals[name],
                                  chunked.bit_arrivals[name])

    def test_replay_chunk_size_properties(self):
        assert replay_mod._replay_chunk_size(1, 1) % 8 == 0
        assert replay_mod._replay_chunk_size(10**9, 10**3) == 8
        big = replay_mod._replay_chunk_size(100, 1)
        assert big >= 8 and big % 8 == 0

    def test_folded_lifetime_sweep_matches_full_runs(self, cb8, foldable8):
        factory = AgedCircuitFactory.characterize(cb8, num_patterns=400)
        years = [0.0, 3.0, 7.0]
        folded = factory.stream_results(years, foldable8, fold=True)
        plain = factory.stream_results(years, foldable8, fold=False)
        for year, got, want in zip(years, folded, plain):
            assert_same(got, want)
            direct = factory.circuit(year).run(foldable8)
            assert_same(got, direct)


class TestAutoChunkBoundaries:
    def test_tiny_netlist_gets_huge_chunk(self):
        chunk = auto_chunk_size(1, 10**9)
        assert chunk % 8 == 0
        assert chunk >= 64

    def test_huge_netlist_hits_floor(self):
        assert auto_chunk_size(10**9, 100) == 64

    def test_always_byte_aligned(self):
        for nets in (1, 7, 64, 1023, 50_000):
            assert auto_chunk_size(nets, 1000) % 8 == 0

    def test_jit_kernel_widens_chunks(self):
        # With the JIT path active (numba installed, or pure-python
        # mode via the module fixture) the numba kernel amortizes
        # per-chunk overhead better, so its auto chunks are 4x larger
        # -- still byte-aligned, still floored at 64.
        assert jit.jit_enabled()
        for nets, patterns in ((300, 5000), (5000, 100000)):
            soa = auto_chunk_size(nets, patterns)
            wide = auto_chunk_size(nets, patterns, kernel="numba")
            # 4x the byte budget, modulo the final round-down-to-8.
            assert abs(wide - 4 * soa) <= 32
            assert wide % 8 == 0
        assert auto_chunk_size(10**9, 100, kernel="numba") == 64

    def test_jit_chunk_factor_needs_jit(self):
        # kernel="numba" without a usable JIT path falls back to the
        # SoA kernel, so the chunk heuristic must match SoA exactly.
        previous = jit.force_python(False)
        try:
            if not jit.HAVE_NUMBA:
                assert (auto_chunk_size(300, 5000, kernel="numba")
                        == auto_chunk_size(300, 5000))
        finally:
            jit.force_python(previous)

    def test_chunk_larger_than_stream_means_unchunked(self, cb8):
        # A chunk above num_patterns is valid and equals the unchunked
        # result (the engine simply runs one chunk).
        circuit = CompiledCircuit(cb8)
        stim = {"md": [1, 2, 3], "mr": [4, 5, 6]}
        chunk = auto_chunk_size(circuit.netlist.num_nets, 3)
        assert chunk > 3
        assert_same(circuit.run(stim, chunk_size=chunk),
                    circuit.run(stim))


class TestValuePlaneCacheFolded:
    def test_lru_eviction(self, cb8):
        circuit = CompiledCircuit(cb8)
        cache = ValuePlaneCache(max_entries=2)
        streams = []
        for seed in (1, 2, 3):
            md, mr = uniform_operands(8, 72, seed=seed)
            streams.append({"md": md, "mr": mr})
        for stim in streams:
            cache.get_or_build(circuit, stim)
        assert len(cache._memory) == 2
        assert cache.misses == 3
        # Oldest entry (seed 1) was evicted: rebuilding it is a miss,
        # while the newest two still hit.
        cache.get_or_build(circuit, streams[2])
        cache.get_or_build(circuit, streams[1])
        assert cache.hits == 2
        cache.get_or_build(circuit, streams[0])
        assert cache.misses == 4

    def test_disk_round_trip_with_folded_stimulus(
        self, cb8, foldable8, tmp_path
    ):
        circuit = CompiledCircuit(cb8)
        plan = fold_stimulus(foldable8)
        assert plan.profitable
        writer = ValuePlaneCache(directory=str(tmp_path))
        writer.get_or_build(circuit, plan.folded)
        assert writer.misses == 1

        reader = ValuePlaneCache(directory=str(tmp_path))
        loaded = reader.get_or_build(circuit, plan.folded)
        assert reader.disk_hits == 1
        folded_result = ArrivalReplay(circuit, loaded).stream()
        got = unfold_stream(folded_result, plan)
        assert_same(got, circuit.run(foldable8))
