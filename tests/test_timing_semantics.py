"""Hand-computed arrival-rule semantics, gate by gate.

These pin down the floating/inertial rules of
:func:`repro.timing.logic.arrival_vector` on minimal circuits where the
correct arrival can be computed by hand -- the precision complement to
the randomized cross-engine fuzzing.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_TECHNOLOGY
from repro.nets.netlist import Netlist
from repro.timing import CompiledCircuit

UNIT = DEFAULT_TECHNOLOGY.time_unit_ns


def delay_of(name):
    from repro.nets.cells import STANDARD_LIBRARY

    return STANDARD_LIBRARY.get(name).delay_units * UNIT


def run_two(nl, **streams):
    """Run a 2-pattern stream; return delay of pattern 1."""
    circuit = CompiledCircuit(nl, mode="floating")
    result = circuit.run({k: np.array(v, dtype=np.uint64)
                          for k, v in streams.items()})
    return result


class TestControllingShortCircuit:
    def _and_with_slow_b(self):
        """AND(a, slow(b)) where b passes through 4 inverters."""
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow = b
        for _ in range(4):
            slow = nl.inv(slow)
        nl.add_output_port("o", [nl.and2(a, slow)])
        return nl

    def test_early_controlling_zero_caps_arrival(self):
        nl = self._and_with_slow_b()
        # a: 1->0 (controlling, arrives at 0); b flips too (slow path).
        result = run_two(nl, a=[1, 0], b=[0, 1])
        assert result.delays[1] == pytest.approx(delay_of("AND2"))

    def test_non_controlling_waits_for_slow_path(self):
        nl = self._and_with_slow_b()
        # a stays 1 (non-controlling); output follows the slow chain.
        # (4 inverters leave b's polarity unchanged: out = a AND b.)
        result = run_two(nl, a=[1, 1], b=[0, 1])
        expected = 4 * delay_of("INV") + delay_of("AND2")
        assert result.delays[1] == pytest.approx(expected)

    def test_stable_controlling_is_quiet(self):
        nl = self._and_with_slow_b()
        # a stays 0: output pinned at 0 no matter what b does.
        result = run_two(nl, a=[0, 0], b=[0, 1])
        assert result.delays[1] == 0.0

    def test_or_controlling_one(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow = nl.inv(nl.inv(b))
        nl.add_output_port("o", [nl.or2(a, slow)])
        result = run_two(nl, a=[0, 1], b=[1, 0])
        # a: 0->1 is controlling for OR: settles after one OR delay.
        assert result.delays[1] == pytest.approx(delay_of("OR2"))


class TestXorAlwaysWaits:
    def test_xor_takes_last_input(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow = nl.inv(nl.inv(nl.inv(b)))
        nl.add_output_port("o", [nl.xor2(a, slow)])
        result = run_two(nl, a=[0, 1], b=[0, 1])
        expected = 3 * delay_of("INV") + delay_of("XOR2")
        assert result.delays[1] == pytest.approx(expected)


class TestMuxIsolation:
    def _mux(self):
        nl = Netlist("t")
        d0, = nl.add_input_port("d0", 1)
        d1, = nl.add_input_port("d1", 1)
        s, = nl.add_input_port("s", 1)
        slow = d1
        for _ in range(6):
            slow = nl.inv(slow)
        nl.add_output_port("o", [nl.mux2(d0, slow, s)])
        return nl

    def test_unselected_slow_input_invisible(self):
        nl = self._mux()
        # select stays 0: only d0 matters even while d1's chain wiggles.
        result = run_two(nl, d0=[0, 1], d1=[0, 1], s=[0, 0])
        assert result.delays[1] == pytest.approx(delay_of("MUX2"))

    def test_newly_selected_fast_branch(self):
        nl = self._mux()
        # select flips to 0 at t=0; d0 stable: output settles fast even
        # though the unselected d1 branch keeps switching.
        result = run_two(nl, d0=[1, 1], d1=[0, 1], s=[1, 0])
        assert result.delays[1] <= delay_of("MUX2") + 1e-12

    def test_selected_slow_branch_waits(self):
        nl = self._mux()
        result = run_two(nl, d0=[0, 0], d1=[0, 1], s=[1, 1])
        expected = 6 * delay_of("INV") + delay_of("MUX2")
        assert result.delays[1] == pytest.approx(expected)


class TestTribufQuiescence:
    def test_stably_disabled_is_quiet(self):
        nl = Netlist("t")
        d, = nl.add_input_port("d", 1)
        e, = nl.add_input_port("e", 1)
        out = nl.tribuf(d, e)
        # Mask downstream as the bypass discipline requires.
        nl.add_output_port("o", [nl.and2(out, e)])
        result = run_two(nl, d=[0, 1], e=[0, 0])
        assert result.delays[1] == 0.0

    def test_enabled_acts_as_wire(self):
        nl = Netlist("t")
        d, = nl.add_input_port("d", 1)
        e, = nl.add_input_port("e", 1)
        out = nl.tribuf(d, e)
        nl.add_output_port("o", [nl.buf(out)])
        result = run_two(nl, d=[0, 1], e=[1, 1])
        expected = delay_of("TRIBUF") + delay_of("BUF")
        assert result.delays[1] == pytest.approx(expected)


class TestInertialQuiet:
    def test_unchanged_output_reports_zero(self):
        """Inertial mode: a static-hazard output (value unchanged) is
        quiet; floating mode reports the hazard window."""
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow = nl.inv(nl.inv(b))
        nl.add_output_port("o", [nl.and2(a, slow)])
        # a: 0->1, b: 1->0 -- output 0 before and after (hazard only).
        stimulus = {"a": np.array([0, 1], dtype=np.uint64),
                    "b": np.array([1, 0], dtype=np.uint64)}
        inertial = CompiledCircuit(nl, mode="inertial").run(stimulus)
        floating = CompiledCircuit(nl, mode="floating").run(stimulus)
        assert inertial.delays[1] == 0.0
        assert floating.delays[1] > 0.0
