"""Structural (gate-level) architecture validation."""

import dataclasses

import numpy as np
import pytest

from repro.core import AgingAwareMultiplier
from repro.core.structural import (
    StructuralArchitecture,
    validate_against_behavioral,
)
from repro.errors import SimulationError
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def arch():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


@pytest.fixture(scope="module")
def structural(arch):
    return StructuralArchitecture(arch)


class TestStructuralDecide:
    def test_matches_zero_count_rule(self, structural, arch):
        rng = np.random.default_rng(81)
        operands = rng.integers(0, 256, 500, dtype=np.uint64)
        zeros = np.array([8 - bin(int(v)).count("1") for v in operands])
        relaxed = structural.decide(operands, aging=False)
        strict = structural.decide(operands, aging=True)
        assert np.array_equal(relaxed, zeros >= arch.skip)
        assert np.array_equal(strict, zeros >= arch.skip + 1)

    def test_strict_subset(self, structural):
        rng = np.random.default_rng(83)
        operands = rng.integers(0, 256, 300, dtype=np.uint64)
        assert np.all(
            structural.decide(operands, True)
            <= structural.decide(operands, False)
        )


class TestStructuralRun:
    def test_gating_sequence_consistent(self, structural):
        md, mr = uniform_operands(8, 400, seed=85)
        result = structural.run(md, mr)
        stalls = sum(1 for enable in result.gating_enable if not enable)
        assert stalls == int((~result.one_cycle).sum())
        # Two stalls never run back to back (the paper: only one cycle
        # of the input flip-flop is disabled).
        for first, second in zip(result.gating_enable,
                                 result.gating_enable[1:]):
            assert first or second

    def test_per_bit_errors_aggregate(self, structural):
        md, mr = uniform_operands(8, 400, seed=87)
        result = structural.run(md, mr)
        flagged = result.error_bits > 0
        # An operation errors iff it was judged one-cycle and some bit
        # flagged (or it blew the two-cycle budget, rare here).
        assert np.all(result.errors <= (flagged | ~result.one_cycle))

    def test_bad_operands_rejected(self, structural):
        with pytest.raises(SimulationError):
            structural.run(
                np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64)
            )


class TestBehavioralEquivalence:
    def test_fresh_silicon(self, arch):
        md, mr = uniform_operands(8, 600, seed=89)
        validation = validate_against_behavioral(arch, md, mr)
        assert validation.ok, validation.mismatched_ops[:10]

    def test_aged_silicon_with_adaptation(self, arch):
        """The strongest check: the indicator flips mid-stream and both
        models must switch judging blocks at the same window."""
        tight = arch.with_cycle(0.35)
        md, mr = uniform_operands(8, 800, seed=91)
        validation = validate_against_behavioral(
            tight, md, mr, years=7.0
        )
        assert validation.ok, validation.mismatched_ops[:10]

    def test_traditional_variant(self, arch):
        traditional = dataclasses.replace(arch, adaptive=False, name="")
        md, mr = uniform_operands(8, 500, seed=93)
        validation = validate_against_behavioral(traditional, md, mr)
        assert validation.ok

    def test_row_kind(self):
        arch = AgingAwareMultiplier.build(
            8, "row", skip=3, cycle_ns=0.45, characterize_patterns=300
        )
        md, mr = uniform_operands(8, 500, seed=95)
        validation = validate_against_behavioral(arch, md, mr)
        assert validation.ok

    def test_sixteen_bit_spot_check(self):
        arch = AgingAwareMultiplier.build(
            16, "column", skip=7, cycle_ns=0.9, characterize_patterns=400
        )
        md, mr = uniform_operands(16, 400, seed=97)
        validation = validate_against_behavioral(arch, md, mr, years=7.0)
        assert validation.ok
