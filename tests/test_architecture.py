"""The full aging-aware variable-latency architecture."""

import dataclasses

import numpy as np
import pytest

from repro.config import DEFAULT_SIM_CONFIG, SimulationConfig
from repro.core import AgingAwareMultiplier
from repro.errors import ConfigError, SimulationError
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def avlcb8():
    """A small adaptive column-bypassing architecture shared read-only."""
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


class TestBuild:
    def test_defaults(self, avlcb8):
        assert avlcb8.width == 8
        assert avlcb8.kind == "column"
        assert avlcb8.name.startswith("A-VLCB-8")

    def test_default_skip_and_cycle(self):
        arch = AgingAwareMultiplier.build(8, "row", characterize_patterns=200)
        assert arch.skip == 3  # width//2 - 1
        assert arch.cycle_ns == pytest.approx(
            0.5 * arch.critical_path_ns(), rel=1e-6
        )

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            AgingAwareMultiplier.build(8, "diagonal")

    def test_bad_cycle_rejected(self, avlcb8):
        with pytest.raises(ConfigError):
            dataclasses.replace(avlcb8, cycle_ns=0.0)

    def test_with_cycle_shares_factory(self, avlcb8):
        sibling = avlcb8.with_cycle(0.7)
        assert sibling.factory is avlcb8.factory
        assert sibling.cycle_ns == 0.7

    def test_with_skip(self, avlcb8):
        sibling = avlcb8.with_skip(4)
        assert sibling.skip == 4
        assert "skip4" in sibling.name


class TestRunAccounting:
    def test_cycle_accounting_identity(self, avlcb8):
        """total = 1-cycle + 2 x 2-cycle + penalty x errors."""
        result = avlcb8.run_random(1500, seed=3)
        report = result.report
        penalty = DEFAULT_SIM_CONFIG.razor_penalty_cycles
        expected = (
            report.one_cycle_ops
            + 2 * report.two_cycle_ops
            + penalty * report.error_count
        )
        assert report.total_cycles == expected
        assert report.num_ops == 1500
        assert report.one_cycle_ops + report.two_cycle_ops == 1500

    def test_latency_definition(self, avlcb8):
        report = avlcb8.run_random(500, seed=5).report
        assert report.average_latency_ns == pytest.approx(
            report.total_cycles * avlcb8.cycle_ns / 500
        )
        assert report.average_cycles_per_op == pytest.approx(
            report.total_cycles / 500
        )

    def test_products_are_correct(self, avlcb8):
        result = avlcb8.run_random(800, seed=7, check_golden=True)
        assert result.golden_ok is True

    def test_errors_subset_of_one_cycle(self, avlcb8):
        result = avlcb8.run_random(800, seed=9)
        assert not np.any(result.errors & ~result.one_cycle)

    def test_errors_are_late_one_cycle_patterns(self, avlcb8):
        result = avlcb8.run_random(800, seed=11)
        late = result.delays > avlcb8.cycle_ns
        assert np.array_equal(result.errors, result.one_cycle & late)

    def test_window_error_trace(self, avlcb8):
        report = avlcb8.run_random(350, seed=13).report
        assert len(report.window_errors) == 4  # 100+100+100+50
        assert sum(report.window_errors) == report.error_count
        assert len(report.indicator_trace) == 4

    def test_deep_retry_accounting(self, avlcb8):
        """Below the two-cycle budget, operations take the slow retry:
        razor_penalty + ceil(delay / T) cycles."""
        tight = avlcb8.with_cycle(0.12)
        result = tight.run_random(600, seed=29)
        report = result.report
        assert report.deep_retry_ops > 0
        over = result.delays > 2 * tight.cycle_ns
        assert report.deep_retry_ops == int(over.sum())
        penalty = DEFAULT_SIM_CONFIG.razor_penalty_cycles
        expected_over = (
            penalty * over.sum()
            + np.ceil(result.delays[over] / tight.cycle_ns).sum()
        )
        base = np.where(result.one_cycle, 1.0 + result.errors * penalty, 2.0)
        # Over-budget two-cycle ops count as errors too (Razor catches
        # them at the two-cycle boundary).
        assert np.all(result.errors[over])
        expected = base[~over].sum() + expected_over
        assert report.total_cycles == pytest.approx(expected)

    def test_latency_turns_back_up_at_short_cycles(self, avlcb8):
        """The slow retry creates the paper's preferred-region shape:
        pushing the clock below the error cliff costs latency again."""
        crit = avlcb8.critical_path_ns()
        shortest, knee = [
            avlcb8.with_cycle(f * crit).run_random(1500, seed=31)
            .report.average_latency_ns
            for f in (0.18, 0.32)
        ]
        assert shortest > knee

    def test_generous_cycle_no_errors(self, avlcb8):
        relaxed = avlcb8.with_cycle(2 * avlcb8.critical_path_ns())
        report = relaxed.run_random(500, seed=15).report
        assert report.error_count == 0
        assert report.undetectable_count == 0

    def test_one_cycle_ratio_matches_judging(self, avlcb8):
        n = 2000
        result = avlcb8.with_cycle(5.0).run_random(n, seed=17)
        # With a generous cycle the indicator never flips, so the ratio
        # is the Skip-3 binomial tail (~85.5% for 8 bits).
        assert result.report.one_cycle_ratio == pytest.approx(0.855, abs=0.03)

    def test_mismatched_operands_rejected(self, avlcb8):
        with pytest.raises(SimulationError):
            avlcb8.run_patterns(np.zeros(3, dtype=np.uint64),
                                np.zeros(4, dtype=np.uint64))

    def test_precomputed_stream_must_match(self, avlcb8):
        md, mr = uniform_operands(8, 50, seed=19)
        stream = avlcb8.factory.circuit(0.0).run({"md": md, "mr": mr})
        with pytest.raises(SimulationError):
            avlcb8.run_patterns(md[:25], mr[:25], stream=stream)

    def test_precomputed_stream_reused(self, avlcb8):
        md, mr = uniform_operands(8, 300, seed=21)
        stream = avlcb8.factory.circuit(0.0).run({"md": md, "mr": mr})
        direct = avlcb8.run_patterns(md, mr)
        reused = avlcb8.run_patterns(md, mr, stream=stream)
        assert (
            direct.report.average_latency_ns
            == reused.report.average_latency_ns
        )


class TestAgingBehaviour:
    def test_errors_increase_with_age(self, avlcb8):
        """Same clock, older circuit: more Razor violations."""
        traditional = dataclasses.replace(avlcb8, adaptive=False, name="")
        fresh = traditional.run_random(2000, seed=23, years=0.0).report
        aged = traditional.run_random(2000, seed=23, years=7.0).report
        assert aged.error_count > fresh.error_count

    def test_adaptive_reduces_errors(self, avlcb8):
        traditional = dataclasses.replace(avlcb8, adaptive=False, name="")
        adaptive = avlcb8.run_random(2000, seed=25, years=7.0).report
        trad = traditional.run_random(2000, seed=25, years=7.0).report
        assert adaptive.error_count <= trad.error_count

    def test_indicator_flips_on_aged_circuit(self, avlcb8):
        tight = avlcb8.with_cycle(0.85 * avlcb8.cycle_ns)
        report = tight.run_random(2000, seed=27, years=7.0).report
        assert report.indicator_aged_at >= 0

    def test_critical_path_grows(self, avlcb8):
        assert avlcb8.critical_path_ns(7.0) > avlcb8.critical_path_ns(0.0)

    def test_row_kind_judges_multiplicator(self):
        arch = AgingAwareMultiplier.build(
            8, "row", skip=3, cycle_ns=0.5, characterize_patterns=200
        )
        md = np.zeros(4, dtype=np.uint64)
        mr = np.full(4, 255, dtype=np.uint64)
        assert np.array_equal(arch.judged_operand(md, mr), mr)


class TestArea:
    def test_area_report_composition(self, avlcb8):
        report = avlcb8.area()
        assert report.razor_flip_flops > 0
        assert report.ahl > 0
        assert report.total == (
            report.combinational
            + report.flip_flops
            + report.razor_flip_flops
            + report.ahl
        )
