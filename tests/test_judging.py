"""Judging blocks: behavioral predicate and structural netlists."""

import numpy as np
import pytest

from repro.arith.reference import count_zeros
from repro.core.judging import (
    JudgingBlock,
    compare_ge_const,
    judging_netlist,
    popcount_nets,
)
from repro.errors import ConfigError
from repro.nets.netlist import CONST0, CONST1, Netlist
from repro.timing import CompiledCircuit
from repro.timing.logic import pack_bits


class TestJudgingBlockBehavioral:
    def test_one_cycle_predicate(self):
        block = JudgingBlock(width=8, skip=5)
        operands = np.array([0b00000000, 0b00000111, 0b00001111, 0xFF],
                            dtype=np.uint64)
        # zeros: 8, 5, 4, 0
        assert block.one_cycle(operands).tolist() == [
            True, True, False, False,
        ]

    def test_ratio_matches_binomial(self):
        block = JudgingBlock(16, 7)
        rng = np.random.default_rng(37)
        operands = rng.integers(0, 1 << 16, 20000, dtype=np.uint64)
        # P(zeros >= 7) for Binomial(16, 1/2) = 0.7728.
        assert block.one_cycle_ratio(operands) == pytest.approx(
            0.7728, abs=0.01
        )

    def test_stricter_block_accepts_fewer(self):
        rng = np.random.default_rng(41)
        operands = rng.integers(0, 1 << 16, 5000, dtype=np.uint64)
        relaxed = JudgingBlock(16, 7).one_cycle(operands)
        strict = JudgingBlock(16, 8).one_cycle(operands)
        assert np.all(strict <= relaxed)
        assert strict.sum() < relaxed.sum()

    def test_validation(self):
        with pytest.raises(ConfigError):
            JudgingBlock(8, 9)
        with pytest.raises(ConfigError):
            JudgingBlock(8, -1)
        with pytest.raises(ConfigError):
            JudgingBlock(0, 0)


class TestPopcount:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_exhaustive(self, width):
        nl = Netlist("pc")
        bits = nl.add_input_port("x", width)
        count = popcount_nets(nl, bits)
        count = [
            net if net not in (CONST0, CONST1) else net for net in count
        ]
        # Route through buffers so constants can appear on ports.
        outs = [
            net if net > CONST1 else nl.buf(nl.const0 if net == CONST0
                                            else nl.const1)
            for net in count
        ]
        nl.add_output_port("count", outs)
        nl.validate()
        circuit = CompiledCircuit(nl)
        values = np.arange(1 << width, dtype=np.uint64)
        result = circuit.run({"x": values})
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(result.outputs["count"], expected)


class TestCompareGeConst:
    @pytest.mark.parametrize("threshold", range(0, 9))
    def test_exhaustive_3bit(self, threshold):
        nl = Netlist("cmp")
        bits = nl.add_input_port("x", 3)
        flag = compare_ge_const(nl, bits, threshold)
        if flag in (CONST0, CONST1):
            # Degenerate threshold: verify the constant is right.
            for value in range(8):
                assert (flag == CONST1) == (value >= threshold) or threshold in (0, 9)
            if threshold == 0:
                assert flag == CONST1
            return
        nl.add_output_port("ge", [flag])
        circuit = CompiledCircuit(nl)
        values = np.arange(8, dtype=np.uint64)
        result = circuit.run({"x": values})
        assert result.outputs["ge"].tolist() == [
            int(v >= threshold) for v in range(8)
        ]

    def test_negative_threshold_rejected(self):
        nl = Netlist("cmp")
        bits = nl.add_input_port("x", 3)
        with pytest.raises(ConfigError):
            compare_ge_const(nl, bits, -1)

    def test_impossible_threshold_is_const0(self):
        nl = Netlist("cmp")
        bits = nl.add_input_port("x", 3)
        assert compare_ge_const(nl, bits, 9) == CONST0


class TestJudgingNetlist:
    @pytest.mark.parametrize("width,skip", [(4, 2), (6, 3), (8, 5)])
    def test_structural_matches_behavioral_exhaustively(self, width, skip):
        nl = judging_netlist(width, skip)
        circuit = CompiledCircuit(nl)
        block = JudgingBlock(width, skip)
        values = np.arange(1 << width, dtype=np.uint64)
        result = circuit.run({"x": values})
        expected = block.one_cycle(values).astype(np.uint64)
        assert np.array_equal(result.outputs["one_cycle"], expected)

    def test_structural_matches_behavioral_random_16(self):
        nl = judging_netlist(16, 7)
        circuit = CompiledCircuit(nl)
        block = JudgingBlock(16, 7)
        rng = np.random.default_rng(43)
        values = rng.integers(0, 1 << 16, 2000, dtype=np.uint64)
        result = circuit.run({"x": values})
        assert np.array_equal(
            result.outputs["one_cycle"], block.one_cycle(values).astype(np.uint64)
        )

    def test_degenerate_skip_zero(self):
        nl = judging_netlist(4, 0)
        circuit = CompiledCircuit(nl)
        values = np.arange(16, dtype=np.uint64)
        result = circuit.run({"x": values})
        assert np.all(result.outputs["one_cycle"] == 1)
