"""Recovery policies: strict / degrade / detect-only semantics."""

import dataclasses

import numpy as np
import pytest

from repro.config import RECOVERY_POLICIES, SimulationConfig
from repro.core import (
    AgingAwareMultiplier,
    DegradeRecovery,
    DetectOnlyRecovery,
    StrictRecovery,
    resolve_policy,
)
from repro.errors import ConfigError, RecoveryExhaustedError, SimulationError


@pytest.fixture(scope="module")
def arch8():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


CYCLE = 1.0
SHADOW = 2.0  # default shadow_skew_fraction=1.0 -> window = 2T
PENALTY = 3
CAP = 4


def resolve(policy, flags, delays, cap=CAP, start_op=0):
    return policy.resolve(
        np.asarray(flags, dtype=bool),
        np.asarray(delays, dtype=float),
        CYCLE,
        SHADOW,
        PENALTY,
        cap,
        start_op=start_op,
    )


class TestDegrade:
    def test_paper_accounting_preserved(self):
        # one-cycle clean = 1; one-cycle late = 1 + penalty;
        # two-cycle within budget = 2; over budget = penalty + ceil(d/T).
        res = resolve(
            DegradeRecovery(),
            [True, True, False, False],
            [0.8, 1.5, 1.9, 3.5],
        )
        assert list(res.cycles) == [1.0, 4.0, 2.0, 7.0]
        assert list(res.errors) == [False, True, False, True]
        assert not res.undetectable.any()
        assert list(res.recovered) == [False, False, False, True]
        assert not res.exhausted.any()

    def test_fallback_cap_binds(self):
        # ceil(9.5 / 1.0) = 10 > cap 4: charge penalty + cap and flag
        # exhausted instead of aborting.
        res = resolve(DegradeRecovery(), [False], [9.5])
        assert list(res.cycles) == [PENALTY + CAP]
        assert list(res.exhausted) == [True]
        assert list(res.recovered) == [False]

    def test_undetectable_mask(self):
        # One-cycle arrival past the shadow window: main and shadow both
        # latch stale data, Razor is blind.
        res = resolve(DegradeRecovery(), [True, False], [2.5, 2.5])
        assert list(res.undetectable) == [True, False]

    def test_architecture_exposes_masks(self, arch8):
        tight = arch8.with_cycle(0.12)
        result = tight.run_random(400, seed=5, policy="degrade")
        rep = result.report
        assert rep.policy == "degrade"
        assert rep.recovered_ops == int(result.recovered.sum())
        assert rep.recovery_exhausted_ops == int(result.exhausted.sum())
        assert rep.undetectable_count == int(result.undetectable.sum())
        assert len(rep.window_recoveries) == len(rep.window_errors)
        assert rep.recovered_ops > 0  # 0.12 ns clock forces deep retries


class TestStrict:
    def test_clean_window_matches_degrade(self):
        flags = [True, True, False]
        delays = [0.5, 1.5, 1.9]
        strict = resolve(StrictRecovery(), flags, delays)
        degrade = resolve(DegradeRecovery(), flags, delays)
        assert np.array_equal(strict.cycles, degrade.cycles)
        assert np.array_equal(strict.errors, degrade.errors)

    def test_raises_on_undetectable(self):
        with pytest.raises(RecoveryExhaustedError) as info:
            resolve(StrictRecovery(), [False, True], [1.0, 2.7], start_op=100)
        assert info.value.op_index == 101
        assert info.value.delay_ns == pytest.approx(2.7)
        assert "shadow window" in str(info.value)

    def test_raises_on_exhausted_cap(self):
        with pytest.raises(RecoveryExhaustedError) as info:
            resolve(StrictRecovery(), [False], [9.5])
        assert "fallback cap" in str(info.value)

    def test_is_simulation_error(self, arch8):
        # Legacy callers catching SimulationError keep working.
        assert issubclass(RecoveryExhaustedError, SimulationError)
        with pytest.raises(SimulationError):
            arch8.with_cycle(0.12).run_random(400, seed=5, policy="strict")

    def test_safe_clock_never_raises(self, arch8):
        relaxed = arch8.with_cycle(1.1 * arch8.critical_path_ns())
        result = relaxed.run_random(400, seed=5, policy="strict")
        assert result.report.policy == "strict"
        assert result.report.recovery_exhausted_ops == 0


class TestDetectOnly:
    def test_no_penalties_charged(self):
        res = resolve(
            DetectOnlyRecovery(),
            [True, True, False, False],
            [0.8, 1.5, 1.9, 3.5],
        )
        assert list(res.cycles) == [1.0, 4.0 - PENALTY, 2.0, 2.0]
        # Detections are still counted for coverage...
        assert list(res.errors) == [False, True, False, True]
        # ...but nothing is recovered or exhausted.
        assert not res.recovered.any()
        assert not res.exhausted.any()

    def test_coverage_counting_on_architecture(self, arch8):
        tight = arch8.with_cycle(0.12)
        detect = tight.run_random(400, seed=5, policy="detect-only")
        degrade = tight.run_random(400, seed=5, policy="degrade")
        assert detect.report.policy == "detect-only"
        assert detect.report.error_count == degrade.report.error_count
        assert (
            detect.report.undetectable_count
            == degrade.report.undetectable_count
        )
        assert detect.report.total_cycles < degrade.report.total_cycles
        assert detect.report.recovered_ops == 0


class TestResolvePolicy:
    def test_names_resolve(self):
        for name in RECOVERY_POLICIES:
            assert resolve_policy(name).name == name

    def test_none_uses_config_default(self):
        config = SimulationConfig(recovery_policy="strict")
        assert resolve_policy(None, config).name == "strict"
        assert resolve_policy(None).name == "degrade"

    def test_instances_pass_through(self):
        policy = DegradeRecovery()
        assert resolve_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_policy("fail-fast")


class TestConfigValidation:
    def test_bad_policy_name(self):
        with pytest.raises(ConfigError):
            SimulationConfig(recovery_policy="yolo")

    def test_zero_fallback_cap(self):
        with pytest.raises(ConfigError):
            SimulationConfig(max_fallback_cycles=0)

    def test_negative_transient_rate(self):
        with pytest.raises(ConfigError):
            SimulationConfig(default_transient_rate=-0.1)
        with pytest.raises(ConfigError):
            SimulationConfig(default_transient_rate=1.01)

    def test_config_default_policy_drives_run(self, arch8):
        strict_arch = dataclasses.replace(
            arch8,
            config=dataclasses.replace(
                arch8.config, recovery_policy="strict"
            ),
            cycle_ns=0.12,
        )
        with pytest.raises(RecoveryExhaustedError):
            strict_arch.run_random(400, seed=5)
