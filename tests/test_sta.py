"""Static timing analysis."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nets.netlist import Netlist
from repro.timing import StaticTiming, critical_path
from repro.config import DEFAULT_TECHNOLOGY


def diamond():
    """a -> INV -> AND <- (a -> INV -> INV): unbalanced reconvergence."""
    nl = Netlist("diamond")
    a, = nl.add_input_port("a", 1)
    short = nl.inv(a)
    long = nl.inv(nl.inv(nl.inv(a)))
    nl.add_output_port("o", [nl.and2(short, long)])
    return nl


class TestStaticTiming:
    def test_chain_arrival(self):
        nl = Netlist("chain")
        a, = nl.add_input_port("a", 1)
        x = nl.inv(nl.inv(a))
        nl.add_output_port("o", [x])
        sta = StaticTiming(nl)
        inv = nl.library.get("INV").delay_units * DEFAULT_TECHNOLOGY.time_unit_ns
        assert sta.critical_delay == pytest.approx(2 * inv)

    def test_worst_path_through_reconvergence(self):
        nl = diamond()
        sta = StaticTiming(nl)
        unit = DEFAULT_TECHNOLOGY.time_unit_ns
        inv = nl.library.get("INV").delay_units * unit
        and2 = nl.library.get("AND2").delay_units * unit
        assert sta.critical_delay == pytest.approx(3 * inv + and2)

    def test_critical_path_cells(self):
        nl = diamond()
        path = StaticTiming(nl).critical_path()
        # 3 inverters + the AND gate, input side first.
        assert [cell.cell_type.name for cell in path] == [
            "INV", "INV", "INV", "AND2",
        ]

    def test_primary_input_arrival_is_zero(self):
        nl = diamond()
        sta = StaticTiming(nl)
        assert sta.arrival(nl.input_ports["a"].nets[0]) == 0.0

    def test_delay_scale_applies(self):
        nl = diamond()
        base = StaticTiming(nl).critical_delay
        scaled = StaticTiming(
            nl, delay_scale=np.full(len(nl.cells), 2.0)
        ).critical_delay
        assert scaled == pytest.approx(2 * base)

    def test_bad_scale_shape_rejected(self):
        with pytest.raises(SimulationError):
            StaticTiming(diamond(), delay_scale=np.ones(1))

    def test_convenience_wrapper(self):
        delay, path = critical_path(diamond())
        assert delay == StaticTiming(diamond()).critical_delay
        assert path[-1].cell_type.name == "AND2"

    def test_sta_upper_bounds_observed_delays(self, cb16, cb16_circuit, stream16):
        md, mr = stream16
        result = cb16_circuit.run({"md": md[:500], "mr": mr[:500]})
        assert result.max_delay <= StaticTiming(cb16).critical_delay + 1e-9
