"""Vectorized stream engine: semantics, chunking, stats, modes."""

import numpy as np
import pytest

from repro.arith import column_bypass_multiplier, golden_products
from repro.errors import SimulationError
from repro.nets.netlist import Netlist
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


def inverter_chain(length=3):
    nl = Netlist("chain")
    a, = nl.add_input_port("a", 1)
    x = a
    for _ in range(length):
        x = nl.inv(x)
    nl.add_output_port("o", [x])
    return nl


class TestBasics:
    def test_first_pattern_is_quiet_by_default(self):
        circuit = CompiledCircuit(inverter_chain())
        result = circuit.run({"a": [1, 1, 0]})
        assert result.delays[0] == 0.0
        assert result.delays[1] == 0.0  # unchanged input
        assert result.delays[2] > 0.0

    def test_initial_overrides_presettle(self):
        circuit = CompiledCircuit(inverter_chain())
        result = circuit.run({"a": [1, 1]}, initial={"a": 0})
        assert result.delays[0] > 0.0
        assert result.delays[1] == 0.0

    def test_chain_delay_is_sum_of_cell_delays(self):
        nl = inverter_chain(4)
        circuit = CompiledCircuit(nl)
        result = circuit.run({"a": [0, 1]})
        inv_delay = (
            nl.library.get("INV").delay_units
            * circuit.technology.time_unit_ns
        )
        assert result.delays[1] == pytest.approx(4 * inv_delay)

    def test_outputs_and_values(self):
        circuit = CompiledCircuit(inverter_chain(3))
        result = circuit.run({"a": [0, 1]})
        assert result.outputs["o"].tolist() == [1, 0]

    def test_missing_port_rejected(self):
        circuit = CompiledCircuit(inverter_chain())
        with pytest.raises(SimulationError):
            circuit.run({})

    def test_extra_port_rejected(self):
        circuit = CompiledCircuit(inverter_chain())
        with pytest.raises(SimulationError):
            circuit.run({"a": [0], "b": [0]})

    def test_unequal_lengths_rejected(self):
        nl = Netlist("two")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        nl.add_output_port("o", [nl.and2(a, b)])
        circuit = CompiledCircuit(nl)
        with pytest.raises(SimulationError):
            circuit.run({"a": [0, 1], "b": [0]})

    def test_empty_stream_rejected(self):
        circuit = CompiledCircuit(inverter_chain())
        with pytest.raises(SimulationError):
            circuit.run({"a": []})

    def test_bad_mode_rejected(self):
        with pytest.raises(SimulationError):
            CompiledCircuit(inverter_chain(), mode="optimistic")

    def test_delay_scale_shape_checked(self):
        nl = inverter_chain(2)
        with pytest.raises(SimulationError):
            CompiledCircuit(nl, delay_scale=np.ones(5))

    def test_delay_scale_positive_checked(self):
        nl = inverter_chain(2)
        with pytest.raises(SimulationError):
            CompiledCircuit(nl, delay_scale=np.zeros(2))

    def test_delay_scale_scales_delays(self):
        nl = inverter_chain(2)
        base = CompiledCircuit(nl).run({"a": [0, 1]}).delays[1]
        scaled = (
            CompiledCircuit(nl, delay_scale=np.full(2, 1.5))
            .run({"a": [0, 1]})
            .delays[1]
        )
        assert scaled == pytest.approx(1.5 * base)

    def test_with_delay_scale_preserves_mode(self):
        circuit = CompiledCircuit(inverter_chain(), mode="floating")
        assert circuit.with_delay_scale(np.ones(3)).mode == "floating"


class TestChunking:
    @pytest.fixture(scope="class")
    def cb8(self):
        return column_bypass_multiplier(8)

    def test_chunked_equals_unchunked(self, cb8):
        circuit = CompiledCircuit(cb8)
        md, mr = uniform_operands(8, 300, seed=9)
        whole = circuit.run({"md": md, "mr": mr})
        for chunk_size in (1, 7, 100, 299):
            parts = circuit.run(
                {"md": md, "mr": mr}, chunk_size=chunk_size
            )
            assert np.array_equal(parts.outputs["p"], whole.outputs["p"])
            assert np.allclose(parts.delays, whole.delays)
            assert np.allclose(parts.switched_caps, whole.switched_caps)

    def test_chunked_net_stats_match(self, cb8):
        circuit = CompiledCircuit(cb8)
        md, mr = uniform_operands(8, 200, seed=10)
        whole = circuit.run(
            {"md": md, "mr": mr}, collect_net_stats=True
        )
        parts = circuit.run(
            {"md": md, "mr": mr}, collect_net_stats=True, chunk_size=37
        )
        assert np.allclose(parts.toggle_counts, whole.toggle_counts)
        assert np.allclose(parts.signal_prob, whole.signal_prob, atol=1e-9)

    def test_bad_chunk_size_rejected(self, cb8):
        circuit = CompiledCircuit(cb8)
        md, mr = uniform_operands(8, 10, seed=1)
        with pytest.raises(SimulationError):
            circuit.run({"md": md, "mr": mr}, chunk_size=0)

    def test_bad_chunk_size_string_rejected(self, cb8):
        circuit = CompiledCircuit(cb8)
        md, mr = uniform_operands(8, 10, seed=1)
        with pytest.raises(SimulationError):
            circuit.run({"md": md, "mr": mr}, chunk_size="huge")

    def test_auto_chunk_equals_unchunked(self, cb8):
        circuit = CompiledCircuit(cb8)
        md, mr = uniform_operands(8, 300, seed=9)
        whole = circuit.run({"md": md, "mr": mr})
        auto = circuit.run({"md": md, "mr": mr}, chunk_size="auto")
        assert np.array_equal(auto.outputs["p"], whole.outputs["p"])
        assert np.array_equal(auto.delays, whole.delays)
        assert np.array_equal(auto.switched_caps, whole.switched_caps)

    def test_auto_chunk_size_bounds(self):
        from repro.timing.engine import auto_chunk_size

        size = auto_chunk_size(num_nets=500, num_patterns=10**9)
        assert size >= 64
        assert size % 8 == 0
        # Small nets / small streams never force chunking overhead.
        assert auto_chunk_size(10, 100) >= 100


class TestInitialValidation:
    def test_unknown_initial_port_rejected(self):
        circuit = CompiledCircuit(inverter_chain())
        with pytest.raises(SimulationError) as err:
            circuit.run({"a": [0, 1]}, initial={"a": 0, "bogus": 1})
        assert "bogus" in str(err.value)

    def test_valid_initial_still_accepted(self):
        circuit = CompiledCircuit(inverter_chain())
        result = circuit.run({"a": [1, 1]}, initial={"a": 0})
        assert result.delays[0] > 0.0


class TestModes:
    def test_inertial_never_exceeds_floating(self):
        nl = column_bypass_multiplier(6)
        md, mr = uniform_operands(6, 400, seed=12)
        inertial = CompiledCircuit(nl, mode="inertial").run(
            {"md": md, "mr": mr}
        )
        floating = CompiledCircuit(nl, mode="floating").run(
            {"md": md, "mr": mr}
        )
        assert np.all(inertial.delays <= floating.delays + 1e-12)
        assert np.array_equal(inertial.outputs["p"], floating.outputs["p"])

    def test_values_identical_across_modes(self):
        nl = column_bypass_multiplier(5)
        md, mr = uniform_operands(5, 200, seed=13)
        for mode in ("inertial", "floating"):
            result = CompiledCircuit(nl, mode=mode).run(
                {"md": md, "mr": mr}
            )
            assert np.array_equal(
                result.outputs["p"], golden_products(md, mr, 5)
            )


class TestStatsCollection:
    def test_signal_probs_in_unit_interval(self, cb16_circuit, stream16):
        md, mr = stream16
        result = cb16_circuit.run(
            {"md": md[:400], "mr": mr[:400]}, collect_net_stats=True
        )
        probs = result.signal_prob
        assert probs is not None
        assert np.all(probs >= 0) and np.all(probs <= 1)
        # Constant rails.
        assert probs[0] == 0.0 and probs[1] == 1.0

    def test_bit_arrivals_shape(self, cb16_circuit, stream16):
        md, mr = stream16
        result = cb16_circuit.run(
            {"md": md[:50], "mr": mr[:50]}, collect_bit_arrivals=True
        )
        arrivals = result.bit_arrivals["p"]
        assert arrivals.shape == (32, 50)
        assert np.allclose(arrivals.max(axis=0), result.delays)

    def test_switched_caps_positive_on_activity(self, cb16_circuit, stream16):
        md, mr = stream16
        result = cb16_circuit.run({"md": md[:100], "mr": mr[:100]})
        assert result.switched_caps[1:].min() > 0

    def test_result_summaries(self, cb16_circuit, stream16):
        md, mr = stream16
        result = cb16_circuit.run({"md": md[:100], "mr": mr[:100]})
        assert result.max_delay >= result.mean_delay >= 0
        assert result.mean_switched_caps() > 0
        assert result.num_patterns == 100
