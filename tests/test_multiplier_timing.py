"""Timing behaviour of the multipliers: the phenomena the AHL exploits."""

import numpy as np
import pytest

from repro.arith import count_zeros
from repro.timing import StaticTiming
from repro.workloads import operands_with_zero_count, uniform_operands


class TestCriticalPaths:
    def test_am_matches_paper(self, am16):
        assert StaticTiming(am16).critical_delay == pytest.approx(
            1.32, abs=0.01
        )

    def test_bypassing_longer_than_am(self, am16, cb16, rb16):
        """Paper Fig. 5: AM 1.32 < RB 1.82 ~ CB 1.88 ns."""
        am = StaticTiming(am16).critical_delay
        cb = StaticTiming(cb16).critical_delay
        rb = StaticTiming(rb16).critical_delay
        assert am < cb < 1.55 * am
        assert am < rb < 1.55 * am

    def test_32bit_scaling_matches_paper(self):
        """Paper: 2.74 (AM), 3.88 (CB), 3.95 (RB) at 32x32 -- our
        calibration (fitted only at 16x16) generalizes."""
        from repro.arith import array_multiplier, column_bypass_multiplier

        am32 = StaticTiming(array_multiplier(32)).critical_delay
        cb32 = StaticTiming(column_bypass_multiplier(32)).critical_delay
        assert am32 == pytest.approx(2.74, abs=0.1)
        assert cb32 == pytest.approx(3.88, abs=0.25)


class TestZeroDependence:
    def test_more_zeros_less_delay_column(self, cb16_circuit):
        """Fig. 6: the delay distribution left-shifts with multiplicand
        zeros."""
        means = {}
        for zeros in (4, 8, 12):
            md = operands_with_zero_count(16, 400, zeros, seed=zeros)
            _, mr = uniform_operands(16, 400, seed=50 + zeros)
            result = cb16_circuit.run({"md": md, "mr": mr})
            means[zeros] = result.mean_delay
        assert means[4] > means[8] > means[12]

    def test_row_bypassing_keys_on_multiplicator(self, rb16):
        from repro.timing import CompiledCircuit

        circuit = CompiledCircuit(rb16)
        means = {}
        for zeros in (4, 12):
            mr = operands_with_zero_count(16, 400, zeros, seed=zeros)
            md, _ = uniform_operands(16, 400, seed=60 + zeros)
            result = circuit.run({"md": md, "mr": mr})
            means[zeros] = result.mean_delay
        assert means[4] > means[12]

    def test_zero_count_correlates_with_delay(self, cb16_circuit, stream16):
        """Spearman-style check: zeros and delay are anticorrelated."""
        md, mr = stream16
        result = cb16_circuit.run({"md": md, "mr": mr})
        zeros = count_zeros(md, 16)
        correlation = np.corrcoef(zeros[1:], result.delays[1:])[0, 1]
        assert correlation < -0.2

    def test_all_zero_multiplicand_is_fastest(self, cb16_circuit):
        md = np.zeros(50, dtype=np.uint64)
        _, mr = uniform_operands(16, 50, seed=77)
        bypassed = cb16_circuit.run({"md": md, "mr": mr})
        md_full = np.full(50, 0xFFFF, dtype=np.uint64)
        active = cb16_circuit.run({"md": md_full, "mr": mr})
        assert bypassed.mean_delay < active.mean_delay


class TestDistributionShape:
    def test_fig5_quantile_claims(self, am16, cb16, rb16, stream16):
        """>98% of AM paths < 0.7 ns; >93% (CB) / 98% (RB) < 0.9 ns."""
        from repro.timing import CompiledCircuit

        md, mr = stream16
        am = CompiledCircuit(am16).run({"md": md, "mr": mr})
        cb = CompiledCircuit(cb16).run({"md": md, "mr": mr})
        rb = CompiledCircuit(rb16).run({"md": md, "mr": mr})
        assert (am.delays < 0.7).mean() > 0.95
        assert (cb.delays < 0.9).mean() > 0.90
        assert (rb.delays < 0.9).mean() > 0.95
