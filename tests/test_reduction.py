"""Carry-save column reduction."""

import numpy as np
import pytest

from repro.arith.reduction import (
    add_constant,
    add_to_column,
    columns_to_product,
    reduce_columns,
)
from repro.errors import NetlistError
from repro.nets.netlist import CONST0, CONST1, Netlist
from repro.timing import CompiledCircuit


def _evaluate(nl, columns_width, bits_port, product_nets, values):
    circuit = CompiledCircuit(nl)
    result = circuit.run({bits_port: values})
    return result.outputs["p"]


class TestColumnHelpers:
    def test_const0_folds_away(self):
        columns = {}
        add_to_column(columns, 3, CONST0)
        assert columns == {}

    def test_negative_weight_rejected(self):
        with pytest.raises(NetlistError):
            add_to_column({}, -1, CONST1)

    def test_add_constant_sets_bits(self):
        columns = {}
        add_constant(columns, 2, 0b101)
        assert sorted(columns) == [2, 4]
        assert columns[2] == [CONST1]

    def test_add_constant_rejects_negative(self):
        with pytest.raises(NetlistError):
            add_constant({}, 0, -1)


class TestReduceColumns:
    def test_reduces_to_two_per_column(self):
        nl = Netlist("r")
        bits = nl.add_input_port("x", 9)
        columns = {0: list(bits)}
        reduced = reduce_columns(nl, columns)
        assert all(len(nets) <= 2 for nets in reduced.values())

    def test_empty_columns_pass_through(self):
        nl = Netlist("r")
        assert reduce_columns(nl, {}) == {}


class TestColumnsToProduct:
    @pytest.mark.parametrize("num_bits", [1, 3, 5, 8])
    def test_popcount_via_columns(self, num_bits):
        """Summing n weight-0 bits computes their population count."""
        nl = Netlist("pc")
        bits = nl.add_input_port("x", num_bits)
        columns = {0: list(bits)}
        out_width = num_bits.bit_length() + 1
        product = columns_to_product(nl, columns, out_width)
        nl.add_output_port("p", product)
        nl.validate()
        circuit = CompiledCircuit(nl)
        values = np.arange(1 << num_bits, dtype=np.uint64)
        got = circuit.run({"x": values}).outputs["p"]
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(got, expected)

    def test_weighted_sum(self):
        """Bits at mixed weights plus a constant sum correctly."""
        nl = Netlist("w")
        bits = nl.add_input_port("x", 3)
        columns = {}
        add_to_column(columns, 0, bits[0])
        add_to_column(columns, 1, bits[1])
        add_to_column(columns, 1, bits[2])  # second bit at weight 1
        add_constant(columns, 0, 5)
        product = columns_to_product(nl, columns, 5)
        nl.add_output_port("p", product)
        circuit = CompiledCircuit(nl)
        values = np.arange(8, dtype=np.uint64)
        got = circuit.run({"x": values}).outputs["p"]
        expected = [
            (v & 1) + 2 * ((v >> 1) & 1) + 2 * ((v >> 2) & 1) + 5
            for v in range(8)
        ]
        assert got.tolist() == expected

    def test_modulo_truncation(self):
        """Weights above the product width are discarded (mod 2^k)."""
        nl = Netlist("m")
        bits = nl.add_input_port("x", 1)
        columns = {0: [bits[0]], 3: [bits[0]]}
        product = columns_to_product(nl, columns, 2)
        nl.add_output_port("p", product)
        circuit = CompiledCircuit(nl)
        got = circuit.run({"x": [0, 1]}).outputs["p"]
        assert got.tolist() == [0, 1]  # the weight-3 bit vanishes
