"""Fault models, injection hooks and campaign sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith import column_bypass_multiplier, row_bypass_multiplier
from repro.core import AgingAwareMultiplier
from repro.errors import FaultError, SimulationError
from repro.faults import (
    DelayFault,
    InjectionCampaign,
    StuckAtFault,
    TransientBitFlip,
    build_fault_hooks,
    compile_with_faults,
    enumerate_fault_sites,
    fault_delay_scale,
)
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def arch8():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


class TestFaultModelValidation:
    def test_stuck_at_value_checked(self):
        with pytest.raises(FaultError):
            StuckAtFault(5, 2)

    def test_constant_rails_rejected(self):
        with pytest.raises(FaultError):
            StuckAtFault(0, 1)
        with pytest.raises(FaultError):
            TransientBitFlip(1, 0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(FaultError):
            TransientBitFlip(5, -0.1)
        with pytest.raises(FaultError):
            TransientBitFlip(5, 1.5)

    def test_negative_extra_delay_rejected(self):
        with pytest.raises(FaultError):
            DelayFault(3, -0.5)

    def test_out_of_range_targets_rejected(self, cb4):
        with pytest.raises(FaultError):
            compile_with_faults(cb4, [StuckAtFault(10 ** 6, 0)])
        with pytest.raises(FaultError):
            compile_with_faults(cb4, [DelayFault(10 ** 6, 0.1)])

    def test_fault_error_is_simulation_error(self):
        assert issubclass(FaultError, SimulationError)


class TestInjection:
    def test_stuck_at_forces_output(self, cb4):
        # Stick the LSB product bit at 1: odd products unchanged, even
        # products gain bit 0.
        lsb = cb4.output_ports["p"].nets[0]
        circuit = compile_with_faults(cb4, [StuckAtFault(lsb, 1)])
        md, mr = uniform_operands(4, 200, seed=3)
        result = circuit.run({"md": md, "mr": mr})
        assert np.array_equal(
            result.outputs["p"], (md * mr) | np.uint64(1)
        )

    def test_transient_flip_rate_and_determinism(self, cb4):
        lsb = cb4.output_ports["p"].nets[0]
        fault = TransientBitFlip(lsb, 0.25, seed=11)
        circuit = compile_with_faults(cb4, [fault])
        md, mr = uniform_operands(4, 4000, seed=5)
        flipped = circuit.run({"md": md, "mr": mr}).outputs["p"]
        corrupted = flipped != (md * mr)
        assert 0.15 < corrupted.mean() < 0.35
        again = circuit.run({"md": md, "mr": mr}).outputs["p"]
        assert np.array_equal(flipped, again)

    def test_transient_flip_chunking_independent(self, cb4):
        lsb = cb4.output_ports["p"].nets[0]
        circuit = compile_with_faults(
            cb4, [TransientBitFlip(lsb, 0.3, seed=7)]
        )
        md, mr = uniform_operands(4, 500, seed=9)
        whole = circuit.run({"md": md, "mr": mr})
        chunked = circuit.run({"md": md, "mr": mr}, chunk_size=64)
        assert np.array_equal(whole.outputs["p"], chunked.outputs["p"])
        assert np.allclose(whole.delays, chunked.delays)

    def test_delay_fault_slows_only_its_cell(self, cb4):
        pristine = CompiledCircuit(cb4)
        md, mr = uniform_operands(4, 300, seed=13)
        base = pristine.run({"md": md, "mr": mr})
        victim = len(cb4.cells) // 2
        faulty = compile_with_faults(cb4, [DelayFault(victim, 0.8)])
        slow = faulty.run({"md": md, "mr": mr})
        assert np.array_equal(base.outputs["p"], slow.outputs["p"])
        assert slow.delays.max() >= base.delays.max()
        assert np.all(slow.delays >= base.delays - 1e-12)

    def test_delay_scale_composition(self, cb4):
        base = np.full(len(cb4.cells), 1.5)
        scale = fault_delay_scale(cb4, [DelayFault(0, 0.2)], base_scale=base)
        assert scale[0] > 1.5
        assert np.all(scale[1:] == 1.5)
        # No delay faults: base scale passes through untouched.
        assert fault_delay_scale(cb4, [StuckAtFault(5, 0)]) is None

    def test_hooks_compose_on_one_net(self, cb4):
        lsb = cb4.output_ports["p"].nets[0]
        hooks = build_fault_hooks(
            cb4, [TransientBitFlip(lsb, 1.0, seed=1), StuckAtFault(lsb, 0)]
        )
        values = np.ones(5, dtype=np.uint8)
        # Stuck-at applied last wins over the flip.
        assert np.all(hooks[lsb](values, 0) == 0)

    def test_enumerate_sites_deterministic(self, cb4):
        a = enumerate_fault_sites(cb4, limit=20, seed=4)
        b = enumerate_fault_sites(cb4, limit=20, seed=4)
        assert a == b
        assert len(a) == 20
        with pytest.raises(FaultError):
            enumerate_fault_sites(cb4, kinds=("bogus",))


class TestZeroFaultEquivalence:
    """An empty campaign is bit-identical to the pristine simulation."""

    @pytest.mark.parametrize("builder", [
        column_bypass_multiplier, row_bypass_multiplier,
    ])
    @pytest.mark.parametrize("mode", ["inertial", "floating"])
    def test_engine_identity(self, builder, mode):
        netlist = builder(4)
        md, mr = uniform_operands(4, 250, seed=17)
        pristine = CompiledCircuit(netlist, mode=mode).run(
            {"md": md, "mr": mr}
        )
        hooked = compile_with_faults(netlist, [], mode=mode).run(
            {"md": md, "mr": mr}
        )
        assert np.array_equal(pristine.outputs["p"], hooked.outputs["p"])
        assert np.array_equal(pristine.delays, hooked.delays)
        assert np.array_equal(
            pristine.switched_caps, hooked.switched_caps
        )

    def test_campaign_identity(self, arch8):
        campaign = InjectionCampaign(arch8, [], num_patterns=400, seed=19)
        baseline = campaign.run_pristine()
        direct = arch8.run_patterns(campaign.md, campaign.mr)
        assert np.array_equal(baseline.products, direct.products)
        assert np.array_equal(baseline.delays, direct.delays)
        assert baseline.report == direct.report

    def test_campaign_identity_aged(self, arch8):
        campaign = InjectionCampaign(
            arch8, [], num_patterns=300, seed=21, years=5.0
        )
        baseline = campaign.run_pristine()
        direct = arch8.run_patterns(campaign.md, campaign.mr, years=5.0)
        assert np.array_equal(baseline.products, direct.products)
        assert np.allclose(baseline.delays, direct.delays)
        assert baseline.report == direct.report


class TestDegradeNeverCorrupts:
    """The degrade policy trades latency, never correctness."""

    @settings(max_examples=15, deadline=None)
    @given(
        cycle_fraction=st.floats(0.1, 1.2),
        seed=st.integers(0, 10 ** 6),
    )
    def test_fuzz_products_exact(self, arch8, cycle_fraction, seed):
        tight = arch8.with_cycle(
            cycle_fraction * arch8.critical_path_ns()
        )
        result = tight.run_random(
            200, seed=seed, check_golden=True, policy="degrade"
        )
        assert result.golden_ok is True

    def test_latency_only_grows_under_pressure(self, arch8):
        relaxed = arch8.with_cycle(2.0 * arch8.critical_path_ns())
        tight = arch8.with_cycle(0.15 * arch8.critical_path_ns())
        fast = relaxed.run_random(300, seed=23, policy="degrade").report
        slow = tight.run_random(300, seed=23, policy="degrade").report
        assert slow.average_cycles_per_op > fast.average_cycles_per_op


class TestCampaignSweep:
    def test_50_site_campaign_completes_under_degrade(self, arch8):
        """Acceptance: >= 50 sites on the 8-bit adaptive column-bypass
        design complete without raising and report per-site stats."""
        campaign = InjectionCampaign.sweep(
            arch8, num_sites=52, num_patterns=300, seed=2
        )
        result = campaign.run()
        assert result.num_sites == 52
        assert result.baseline.report.policy == "degrade"
        for site in result.sites:
            assert site.corrupted_ops >= 0
            assert site.detected_ops + site.silent_ops == site.corrupted_ops
            assert 0.0 <= site.detection_fraction <= 1.0
            assert site.avg_latency_ns > 0
        assert result.corrupting_sites > 0
        assert "fault kind" in result.render()

    def test_razor_covers_delay_not_stuck(self, arch8):
        tight = arch8.with_cycle(0.6 * arch8.critical_path_ns())
        campaign = InjectionCampaign.sweep(
            tight, num_sites=40, num_patterns=300, seed=6
        )
        result = campaign.run()
        assert result.detection_coverage("delay") == 1.0
        stuck = [
            s for s in result.sites
            if s.kind.startswith("stuck-at") and s.corrupted_ops > 0
        ]
        assert stuck, "sweep found no corrupting stuck-at sites"
        assert result.detection_coverage("stuck-at-0") < 1.0 or (
            result.detection_coverage("stuck-at-1") < 1.0
        )

    def test_bad_campaign_rejected(self, arch8):
        with pytest.raises(FaultError):
            InjectionCampaign(arch8, [], num_patterns=0)
        with pytest.raises(FaultError):
            InjectionCampaign(arch8, ["not-a-fault"], num_patterns=10)

    def test_delay_hotspot_elevates_latency(self, arch8):
        tight = arch8.with_cycle(0.6 * arch8.critical_path_ns())
        campaign = InjectionCampaign(
            tight,
            [DelayFault(len(arch8.netlist.cells) // 2, tight.cycle_ns)],
            num_patterns=400,
            seed=8,
        )
        result = campaign.run()
        site = result.sites[0]
        assert site.kind == "delay"
        assert (
            site.avg_latency_ns
            >= result.baseline.report.average_latency_ns
        )


class TestEmFaultSites:
    """EM-coupled delay-fault sites (``sites="em"`` campaigns)."""

    @pytest.fixture(scope="class")
    def rates8(self, arch8):
        from repro.aging import cell_toggle_rates

        md, mr = uniform_operands(8, 400, seed=13)
        stats = arch8.factory.stream_result(
            0.0, {"md": md, "mr": mr}, collect_net_stats=True
        )
        return cell_toggle_rates(
            arch8.netlist, stats.toggle_counts, 400
        )

    def test_ranked_by_absolute_delay_gain(self, arch8, rates8):
        from repro.faults import em_fault_sites

        faults = em_fault_sites(arch8.netlist, rates8, years=10.0)
        assert len(faults) == len(arch8.netlist.cells)
        assert all(isinstance(f, DelayFault) for f in faults)
        extras = [f.extra_ns for f in faults]
        assert extras == sorted(extras, reverse=True)
        assert extras[0] > 0
        assert all(extra >= 0 for extra in extras)

    def test_limit_takes_worst_cells(self, arch8, rates8):
        from repro.faults import em_fault_sites

        full = em_fault_sites(arch8.netlist, rates8)
        top = em_fault_sites(arch8.netlist, rates8, limit=10)
        assert [(f.cell, f.extra_ns) for f in top] == [
            (f.cell, f.extra_ns) for f in full[:10]
        ]

    def test_deterministic(self, arch8, rates8):
        from repro.faults import em_fault_sites

        first = em_fault_sites(arch8.netlist, rates8, years=10.0)
        second = em_fault_sites(arch8.netlist, rates8, years=10.0)
        assert [(f.cell, f.extra_ns) for f in first] == [
            (f.cell, f.extra_ns) for f in second
        ]

    def test_more_years_more_delay(self, arch8, rates8):
        from repro.faults import em_fault_sites

        early = em_fault_sites(arch8.netlist, rates8, years=2.0)
        late = em_fault_sites(arch8.netlist, rates8, years=10.0)
        assert late[0].extra_ns > early[0].extra_ns

    def test_em_campaign_sweep(self, arch8):
        campaign = InjectionCampaign.sweep(
            arch8, num_sites=12, num_patterns=200, seed=4, sites="em"
        )
        assert len(campaign.faults) == 12
        assert all(isinstance(f, DelayFault) for f in campaign.faults)
        result = campaign.run()
        assert len(result.sites) == 12
        assert all(site.kind == "delay" for site in result.sites)

    def test_em_sweep_deterministic(self, arch8):
        first = InjectionCampaign.sweep(
            arch8, num_sites=8, num_patterns=200, seed=4, sites="em"
        )
        second = InjectionCampaign.sweep(
            arch8, num_sites=8, num_patterns=200, seed=4, sites="em"
        )
        assert [
            (f.cell, f.extra_ns) for f in first.faults
        ] == [(f.cell, f.extra_ns) for f in second.faults]

    def test_unknown_sites_rejected(self, arch8):
        with pytest.raises(FaultError):
            InjectionCampaign.sweep(
                arch8, num_sites=8, num_patterns=200, sites="thermal"
            )
