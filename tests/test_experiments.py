"""End-to-end experiment harness tests.

These run every registered experiment at a small pattern scale (shared
session context) and assert the *paper's qualitative claims* -- the same
checks EXPERIMENTS.md documents quantitatively at full scale.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    REGISTRY,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments import (
    fig05_delay_distribution,
    fig06_zeros_vs_delay,
    fig07_aging_trend,
    fig09_10_zero_distribution,
    fig13_14_latency_sweep,
    fig15_18_skip_comparison,
    fig19_22_adaptive_errors,
    fig23_24_adaptive_latency,
    fig25_area,
    fig26_27_lifetime,
    tables_one_cycle_ratio,
)


class TestRegistry:
    def test_all_design_md_experiments_present(self):
        expected = {
            "fig05", "fig06", "fig07", "fig09_10", "tab1", "tab2",
            "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
            "fig25", "fig26", "fig27",
            "ext_em", "ext_baselines", "ext_faults", "ext_workloads",
            "ext_vladder", "claims", "mc_yield", "mc_guardband",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_unknown_experiment_suggests_nearest(self):
        with pytest.raises(ConfigError, match="did you mean 'ext_faults'"):
            get_experiment("ext_fault")

    def test_spec_round_trip_all_ids(self):
        """Every registry entry is a coherent ExperimentSpec: the key is
        the id, the runner is callable, the title is set, every tag is
        known, and the declared defaults pass the spec's own override
        validation."""
        from repro.experiments.registry import KNOWN_TAGS

        for name, spec in REGISTRY.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.id == name
            assert get_experiment(name) is spec
            assert callable(spec.runner)
            assert spec.title
            assert spec.tags
            assert set(spec.tags) <= set(KNOWN_TAGS)
            assert ("paper" in spec.tags) != ("extension" in spec.tags)
            spec.validate_overrides(spec.defaults)

    def test_list_experiments_sorted_and_filtered(self):
        everything = list_experiments()
        assert [s.id for s in everything] == sorted(REGISTRY)
        extensions = {s.id for s in list_experiments(tag="extension")}
        assert extensions == {
            "ext_em", "ext_baselines", "ext_faults", "ext_workloads",
            "ext_vladder", "mc_yield", "mc_guardband",
        }
        papers = {s.id for s in list_experiments(tag="paper")}
        assert papers | extensions == set(REGISTRY)
        assert not papers & extensions

    def test_unknown_override_rejected_with_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean 'num_sites'"):
            run_experiment("ext_faults", num_site=5)

    def test_spec_validation_guards_construction(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(id="", title="t", runner=lambda c: None)
        with pytest.raises(ConfigError):
            ExperimentSpec(id="x", title="t", runner="not-callable")

    def test_kwargs_runner_passes_overrides_through(self):
        # Wrapper runners (**kw) cannot be signature-validated; the
        # spec must not reject their overrides up front.
        spec = get_experiment("fig13")
        assert spec.accepts_any_keyword()
        spec.validate_overrides({"anything": 1})


class TestFig05(object):
    def test_claims(self, ctx):
        result = fig05_delay_distribution.run(ctx)
        # Calibration target: AM critical path = 1.32 ns.
        assert result.critical_ns["am"] == pytest.approx(1.32, abs=0.01)
        # Bypassing multipliers have longer critical paths than the AM.
        assert result.critical_ns["column"] > result.critical_ns["am"]
        assert result.critical_ns["row"] > result.critical_ns["am"]
        # The bulk of the paths is far below the critical path.
        for kind in ("am", "column", "row"):
            assert result.fraction_below[kind] > 0.85
        assert "am" in result.render()


class TestFig06(object):
    def test_left_shift_with_more_zeros(self, ctx):
        result = fig06_zeros_vs_delay.run(ctx, num_patterns=600)
        assert result.monotone_decreasing
        assert result.mean_delay_ns[6] > result.mean_delay_ns[10]


class TestFig07(object):
    def test_thirteen_percent_drift(self, ctx):
        result = fig07_aging_trend.run(ctx)
        for kind in ("column", "row"):
            assert result.drift_at_7y[kind] == pytest.approx(0.13, abs=0.02)
            # t^(1/6): most of the drift lands in the first year.
            series = result.series[kind]
            first_year = series.y[1] - series.y[0]
            last_year = series.y[-1] - series.y[-2]
            assert first_year > 5 * last_year


class TestZeroDistributions(object):
    def test_binomial_shape(self, ctx):
        result = fig09_10_zero_distribution.run(ctx, num_patterns=4000)
        assert result.max_pmf_error("md") < 0.03
        assert result.max_pmf_error("mr") < 0.03


class TestTables(object):
    def test_table1_ratios_near_binomial(self, ctx):
        result = tables_one_cycle_ratio.run_table1(ctx, num_patterns=4000)
        for skip in (7, 8, 9):
            expected = tables_one_cycle_ratio.binomial_tail(16, skip)
            for kind in ("column", "row"):
                assert result.ratios[(kind, skip)] == pytest.approx(
                    expected, abs=0.03
                )

    def test_table2_decreasing_in_skip(self, ctx):
        result = tables_one_cycle_ratio.run_table2(ctx, num_patterns=2000)
        ratios = [result.ratios[("column", s)] for s in (15, 16, 17)]
        assert ratios[0] > ratios[1] > ratios[2]


class TestFig13(object):
    def test_variable_latency_beats_fixed(self, ctx):
        result = fig13_14_latency_sweep.run_fig13(
            ctx, num_patterns=1500, skips=(7,),
        )
        # The headline claim: large improvement over the fixed-latency
        # design, and a best point beating even the AM.
        assert result.improvement_vs("column", 7, "flcb") > 0.20
        assert result.improvement_vs("row", 7, "flrb") > 0.20
        assert result.improvement_vs("column", 7, "am") > 0.0
        assert len(result.preferred_range("column", 7)) > 0


class TestFig15(object):
    def test_skip_crossover(self, ctx):
        result = fig15_18_skip_comparison.run(
            ctx, width=16, kind="column", num_patterns=2000
        )
        assert result.crossover_ok()
        assert result.errors_monotone(slack=0.1)


class TestFig19(object):
    def test_adaptive_never_worse(self, ctx):
        result = fig19_22_adaptive_errors.run_fig19(ctx, num_patterns=1500)
        assert result.adaptive_never_worse(slack=2)
        # Errors fall as the clock relaxes.
        assert result.traditional.y[0] > result.traditional.y[-1]


class TestFig23(object):
    def test_adaptive_wins_at_short_cycles(self, ctx):
        result = fig23_24_adaptive_latency.run_fig23(
            ctx, num_patterns=1500, skips=(7,), kinds=("column",)
        )
        assert result.gap_at_shortest("column", 7) >= 0.0


class TestFig25(object):
    def test_area_claims(self, ctx):
        result = fig25_area.run(ctx)
        for width in (16, 32):
            for kind in ("column", "row"):
                assert result.adaptive_overhead(width, kind) > 0
        # The relative overhead shrinks at 32x32 (the paper's point).
        assert result.adaptive_overhead(32, "column") < (
            result.adaptive_overhead(16, "column")
        )
        assert result.adaptive_overhead(32, "row") < (
            result.adaptive_overhead(16, "row")
        )


class TestFig26(object):
    @pytest.fixture(scope="class")
    def lifetime(self, ctx):
        # The AM-vs-adaptive crossover is a ~1% latency margin: keep
        # enough patterns for the error statistics to settle.
        return fig26_27_lifetime.run_fig26(
            ctx, num_patterns=2500, years=(0.0, 2.0, 7.0)
        )

    def test_fixed_degrades_adaptive_does_not(self, lifetime):
        for fixed in ("am", "flcb", "flrb"):
            assert lifetime.latency_growth(fixed) == pytest.approx(
                0.13, abs=0.025
            )
        for adaptive in ("a-vlcb", "a-vlrb"):
            assert lifetime.latency_growth(adaptive) < 0.04

    def test_am_crosses_above_adaptive(self, lifetime):
        """Paper: the AM is faster fresh, slower after ~2 years."""
        am = lifetime.latency_ns["am"]
        avlcb = lifetime.latency_ns["a-vlcb"]
        assert am.y[0] < avlcb.y[0]
        assert am.y[-1] > avlcb.y[-1]

    def test_power_ordering_and_trend(self, lifetime):
        power = lifetime.power_w
        # AM burns the most; fixed designs less than their adaptive kin.
        assert power["am"].y[0] > power["flcb"].y[0]
        assert power["flcb"].y[0] < power["a-vlcb"].y[0]
        assert power["flrb"].y[0] < power["a-vlrb"].y[0]
        # Power decreases with aging (Vth rises).
        for design in power:
            assert power[design].y[-1] < power[design].y[0]


class TestRunExperiment(object):
    def test_run_by_name(self, ctx):
        result = run_experiment("fig06", ctx, num_patterns=300)
        assert result.num_patterns == 300


class TestClaims(object):
    def test_all_headline_claims_hold(self, ctx):
        from repro.experiments import claims

        result = claims.run(ctx, num_patterns=2500)
        failed = [
            check.claim
            for check in result.report.claims
            if not check.holds
        ]
        assert result.all_hold, failed
        assert len(result.report.claims) >= 10
        assert "Claim checklist" in result.render()
