"""``python -m repro.experiments`` command-line surface."""

import glob
import json
import os

import pytest

from repro.experiments.__main__ import main

#: Cheap flags shared by every run test (16-bit experiments, few
#: patterns).  The CLI has no characterize-patterns knob, so runs here
#: still pay one 2000-pattern characterization per design -- keep the
#: touched designs small and few.
RUN = ["--scale", "0.02"]


class TestListing:
    def test_no_args_lists_everything(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments:" in out
        for name in ("fig05", "fig27", "ext_faults", "claims"):
            assert name in out

    def test_tag_filters_listing(self, capsys):
        assert main(["--tag", "extension"]) == 0
        out = capsys.readouterr().out
        assert "ext_em" in out
        assert "fig05" not in out


class TestErrors:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_typo_gets_did_you_mean(self, capsys):
        assert main(["ext_fault"]) == 2
        assert "did you mean 'ext_faults'" in capsys.readouterr().err

    def test_typo_in_comma_list_fails_fast(self, capsys):
        assert main(["fig06,fig98"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["fig06", "--jobs", "0"] + RUN) == 2
        assert "jobs" in capsys.readouterr().err


class TestSingleRun:
    def test_run_one_experiment(self, capsys):
        assert main(["fig06"] + RUN) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "=" * 72 in out
        # Suite accounting trailer.
        assert "suite: 1 experiments, jobs=1" in out

    def test_comma_separated_runs_both(self, capsys):
        assert main(["fig06,fig07"] + RUN) == 0
        out = capsys.readouterr().out
        assert out.index("fig06") < out.index("fig07")
        assert "suite: 2 experiments" in out


class TestArtifacts:
    def test_report_written(self, tmp_path, capsys):
        report = str(tmp_path / "report.md")
        assert main(["fig06", "--report", report] + RUN) == 0
        text = open(report, encoding="utf-8").read()
        assert "fig06" in text
        assert "suite accounting" in text

    def test_dump_rendered_is_canonical_json(self, tmp_path, capsys):
        dump = str(tmp_path / "rendered.json")
        assert main(["fig06", "--dump-rendered", dump] + RUN) == 0
        rendered = json.load(open(dump, encoding="utf-8"))
        assert set(rendered) == {"fig06"}
        assert rendered["fig06"].strip()


class TestStoreFlags:
    def test_warm_rerun_matches_and_hits(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        cold_dump = str(tmp_path / "cold.json")
        warm_dump = str(tmp_path / "warm.json")
        assert (
            main(["fig06", "--store", store, "--dump-rendered", cold_dump]
                 + RUN) == 0
        )
        capsys.readouterr()
        assert (
            main(["fig06", "--store", store, "--dump-rendered", warm_dump]
                 + RUN) == 0
        )
        out = capsys.readouterr().out
        assert json.load(open(cold_dump)) == json.load(open(warm_dump))
        assert "store: %s" % store in out
        assert glob.glob(os.path.join(store, "manifest-*.jsonl"))

    def test_cold_clears_the_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["fig06", "--store", store] + RUN) == 0
        shards = sorted(glob.glob(os.path.join(store, "manifest-*.jsonl")))
        assert shards
        before = max(os.path.getmtime(path) for path in shards)
        assert main(["fig06", "--store", store, "--cold"] + RUN) == 0
        # The manifest was rebuilt from scratch, not appended.
        shards = sorted(glob.glob(os.path.join(store, "manifest-*.jsonl")))
        records = [
            json.loads(line)
            for path in shards
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert max(os.path.getmtime(path) for path in shards) >= before
        assert all(r["kind"] in ("netlist", "stress", "stream")
                   for r in records)


class TestParallelFlag:
    def test_jobs_matches_serial_bytes(self, tmp_path, capsys):
        serial_dump = str(tmp_path / "serial.json")
        parallel_dump = str(tmp_path / "parallel.json")
        assert (
            main(["fig06,fig07", "--dump-rendered", serial_dump] + RUN)
            == 0
        )
        assert (
            main(
                ["fig06,fig07", "--jobs", "2", "--store",
                 str(tmp_path / "store"), "--dump-rendered",
                 parallel_dump] + RUN
            ) == 0
        )
        out = capsys.readouterr().out
        assert json.load(open(serial_dump)) == json.load(open(parallel_dump))
        assert "jobs=2" in out
