"""Razor flip-flop model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.razor import RazorBank, RazorFlipFlop


class TestRazorFlipFlop:
    ff = RazorFlipFlop(cycle_ns=1.0, shadow_skew_ns=1.0)

    def test_early_arrival_no_error(self):
        main, shadow, error = self.ff.samples(0.8, 1)
        assert (main, shadow, error) == (1, 1, False)

    def test_late_arrival_detected(self):
        main, shadow, error = self.ff.samples(1.3, 1)
        assert error
        assert shadow == 1
        assert main != shadow  # main latched stale data

    def test_beyond_shadow_window_raises(self):
        with pytest.raises(SimulationError):
            self.ff.samples(2.5, 1)

    def test_error_predicate(self):
        assert not self.ff.error(1.0)
        assert self.ff.error(1.0001)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RazorFlipFlop(0.0, 1.0)
        with pytest.raises(SimulationError):
            RazorFlipFlop(1.0, 0.0)


class TestRazorBank:
    bank = RazorBank(cycle_ns=0.9, shadow_skew_ns=0.9)

    def test_vectorized_errors(self):
        delays = np.array([0.0, 0.5, 0.9, 0.91, 1.7, 1.81])
        assert self.bank.errors(delays).tolist() == [
            False, False, False, True, True, True,
        ]

    def test_undetectable_flags(self):
        delays = np.array([1.0, 1.8, 1.81])
        assert self.bank.undetectable(delays).tolist() == [
            False, False, True,
        ]

    def test_error_count(self):
        # cycle = 0.9: both 1.0 and 1.5 miss the edge.
        assert self.bank.error_count([0.5, 1.0, 1.5]) == 2
        assert self.bank.error_count([0.1, 0.2]) == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            RazorBank(-1.0, 1.0)
        with pytest.raises(SimulationError):
            RazorBank(1.0, -1.0)

    def test_scalar_inputs_accepted(self):
        assert bool(self.bank.errors(1.5)) is True
