"""Razor flip-flop model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.razor import RazorBank, RazorFlipFlop, RazorSample


class TestRazorFlipFlop:
    ff = RazorFlipFlop(cycle_ns=1.0, shadow_skew_ns=1.0)

    def test_early_arrival_no_error(self):
        main, shadow, error = self.ff.samples(0.8, 1)
        assert (main, shadow, error) == (1, 1, False)

    def test_late_arrival_detected(self):
        main, shadow, error = self.ff.samples(1.3, 1)
        assert error
        assert shadow == 1
        assert main != shadow  # main latched stale data

    def test_beyond_shadow_window_raises(self):
        with pytest.raises(SimulationError):
            self.ff.samples(2.5, 1)

    def test_beyond_shadow_window_non_strict(self):
        # Under any non-strict policy the scalar path reports the
        # physical outcome: both latches stale, error line low.
        main, shadow, error = self.ff.samples(2.5, 1, policy="degrade")
        assert (main, shadow, error) == (0, 0, False)

    def test_error_predicate(self):
        assert not self.ff.error(1.0)
        assert self.ff.error(1.0001)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RazorFlipFlop(0.0, 1.0)
        with pytest.raises(SimulationError):
            RazorFlipFlop(1.0, 0.0)


class TestRazorBank:
    bank = RazorBank(cycle_ns=0.9, shadow_skew_ns=0.9)

    def test_vectorized_errors(self):
        delays = np.array([0.0, 0.5, 0.9, 0.91, 1.7, 1.81])
        assert self.bank.errors(delays).tolist() == [
            False, False, False, True, True, True,
        ]

    def test_undetectable_flags(self):
        delays = np.array([1.0, 1.8, 1.81])
        assert self.bank.undetectable(delays).tolist() == [
            False, False, True,
        ]

    def test_error_count(self):
        # cycle = 0.9: both 1.0 and 1.5 miss the edge.
        assert self.bank.error_count([0.5, 1.0, 1.5]) == 2
        assert self.bank.error_count([0.1, 0.2]) == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            RazorBank(-1.0, 1.0)
        with pytest.raises(SimulationError):
            RazorBank(1.0, -1.0)

    def test_scalar_inputs_accepted(self):
        assert bool(self.bank.errors(1.5)) is True

    def test_batch_samples_never_raise(self):
        # One overrun pattern must not abort the batch: it surfaces in
        # the undetectable mask while the other patterns stay valid.
        arrivals = np.array([0.5, 1.0, 1.7, 1.81, 5.0])
        values = np.ones(5, dtype=np.uint8)
        sample = self.bank.samples(arrivals, values)
        assert isinstance(sample, RazorSample)
        assert sample.error.tolist() == [False, True, True, False, False]
        assert sample.undetectable.tolist() == [
            False, False, False, True, True,
        ]
        # Main FF latches stale data for every late arrival; the shadow
        # latch goes stale only past its own window.
        assert sample.main.tolist() == [1, 0, 0, 0, 0]
        assert sample.shadow.tolist() == [1, 1, 1, 0, 0]
        # Error line = main/shadow mismatch, everywhere.
        assert np.array_equal(sample.error, sample.main != sample.shadow)

    def test_batch_matches_scalar_in_window(self):
        ff = RazorFlipFlop(self.bank.cycle_ns, self.bank.shadow_skew_ns)
        for arrival in [0.3, 0.95, 1.5, 1.79]:
            for value in (0, 1):
                main, shadow, error = ff.samples(arrival, value)
                sample = self.bank.samples(
                    np.array([arrival]), np.array([value])
                )
                assert sample.main[0] == main
                assert sample.shadow[0] == shadow
                assert bool(sample.error[0]) == error

    def test_batch_undetectable_agrees_with_predicate(self):
        arrivals = np.linspace(0.0, 3.0, 31)
        sample = self.bank.samples(arrivals, np.zeros(31, dtype=np.uint8))
        assert np.array_equal(
            sample.undetectable, self.bank.undetectable(arrivals)
        )
