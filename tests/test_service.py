"""Reliability service: protocol, server end-to-end, degradation."""

import json
import socket

import pytest

from repro.errors import ServiceError
from repro.service import (
    ServiceClient,
    ServiceConfig,
    compute_direct,
    run_concurrent_queries,
    serve_in_background,
)
from repro.service.protocol import (
    QuerySpec,
    decode,
    encode,
    ok_response,
)
from repro.service import __main__ as service_cli

# Small-but-real knobs: an 8-bit design characterized with few patterns
# keeps the whole end-to-end pass in seconds.
WIDTH = 8
CHAR_PATTERNS = 150
NUM_PATTERNS = 100


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "query", "id": 3, "width": 8, "kind": "am"}
        assert decode(encode(message)) == message
        assert encode(message).endswith(b"\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServiceError):
            decode(b"!!not json!!\n")
        with pytest.raises(ServiceError):
            decode(b"[1, 2, 3]\n")

    def test_spec_from_request_defaults_and_normalization(self):
        spec = QuerySpec.from_request(
            {"width": 8, "kind": "column", "years": 5}
        )
        assert spec.years == (5.0,)
        assert spec.num_patterns == 1000
        assert spec.seed == 1
        assert spec.cycle_ns is None

    @pytest.mark.parametrize(
        "overrides",
        [
            {"width": 1},
            {"width": "16"},
            {"kind": "booth"},
            {"years": []},
            {"years": [0.0, 101.0]},
            {"years": "now"},
            {"num_patterns": 0},
            {"seed": 1.5},
            {"cycle_ns": -2.0},
        ],
    )
    def test_spec_validation_rejects(self, overrides):
        request = {"width": 8, "kind": "column", "years": [0.0]}
        request.update(overrides)
        with pytest.raises(ServiceError):
            QuerySpec.from_request(request)

    def test_cache_key_separates_years_not_groups(self):
        a = QuerySpec.from_request(
            {"width": 8, "kind": "column", "years": [0.0, 5.0]}
        )
        assert a.group_key() == a.with_years([7.0]).group_key()
        assert a.cache_key(0.0) != a.cache_key(5.0)

    def test_ok_response_shape(self):
        response = ok_response(9, [{"year": 0.0}], "lru", 1.23456)
        assert response["status"] == "ok"
        assert response["id"] == 9
        assert response["elapsed_ms"] == 1.235


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0,
        store_dir=None,
        workers=1,
        characterize_patterns=CHAR_PATTERNS,
        testing_hooks=True,
    )
    with serve_in_background(config) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


def _query(client, years, **options):
    options.setdefault("num_patterns", NUM_PATTERNS)
    options.setdefault("cycle_ns", 8.0)
    return client.query(WIDTH, "column", years, **options)


class TestServerEndToEnd:
    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        assert "counters" in stats and "lru_entries" in stats

    def test_cold_then_warm_query(self, client):
        cold = _query(client, [0.0, 10.0])
        assert cold["status"] == "ok"
        assert [r["year"] for r in cold["results"]] == [0.0, 10.0]
        record = cold["results"][0]
        assert record["width"] == WIDTH
        assert record["mean_delay_ns"] > 0
        assert 0.0 <= record["error_rate"] <= 1.0
        # Aging must not speed the design up.
        years0, years10 = cold["results"]
        assert years10["mean_delay_ns"] >= years0["mean_delay_ns"]

        warm = _query(client, [0.0, 10.0])
        assert warm["status"] == "ok"
        assert warm["source"] == "lru"
        assert warm["results"] == cold["results"]

    def test_error_rate_none_without_cycle(self, client):
        response = client.query(
            WIDTH, "column", 0.0, num_patterns=NUM_PATTERNS
        )
        assert response["status"] == "ok"
        assert response["results"][0]["error_rate"] is None

    def test_partial_lru_hit_builds_only_missing_years(self, client):
        _query(client, [1.0])
        before = client.stats()["counters"]
        mixed = _query(client, [1.0, 2.0])
        after = client.stats()["counters"]
        assert mixed["status"] == "ok"
        assert [r["year"] for r in mixed["results"]] == [1.0, 2.0]
        assert after["lru_hits"] - before["lru_hits"] == 1
        assert after["backend_calls"] - before["backend_calls"] == 1

    def test_concurrent_duplicates_coalesce_to_one_build(
        self, server, client
    ):
        """Acceptance: N identical concurrent cold queries -> exactly
        one backend build."""
        duplicates = 6
        before = client.stats()["counters"]
        request = {
            "width": WIDTH,
            "kind": "column",
            "years": 21.0,
            "num_patterns": NUM_PATTERNS,
            "cycle_ns": 8.0,
        }
        responses = run_concurrent_queries(
            server.port, [request] * duplicates
        )
        after = client.stats()["counters"]
        assert all(r["status"] == "ok" for r in responses)
        assert len({json.dumps(r["results"]) for r in responses}) == 1
        assert after["backend_calls"] - before["backend_calls"] == 1
        shared = (
            after["coalesced"] - before["coalesced"]
            + after["lru_hits"] - before["lru_hits"]
        )
        assert shared == duplicates - 1

    def test_matches_direct_computation(self, client):
        """The service is an oracle-faithful cache: served records are
        byte-identical to an in-process computation."""
        served = client.results(
            WIDTH, "column", [0.0, 10.0],
            num_patterns=NUM_PATTERNS, cycle_ns=8.0,
        )
        direct = compute_direct(
            QuerySpec(
                width=WIDTH, kind="column", years=(0.0, 10.0),
                num_patterns=NUM_PATTERNS, seed=1, cycle_ns=8.0,
            ),
            characterize_patterns=CHAR_PATTERNS,
        )
        canon = lambda records: json.dumps(records, sort_keys=True)
        assert canon(served) == canon(direct)


class TestDegradation:
    def test_deadline_miss_serves_stale(self, client):
        _query(client, [30.0])  # warm a stale candidate for the group
        response = _query(
            client, [31.0], inject="sleep:1.0", deadline_ms=120,
        )
        assert response["status"] == "degraded"
        assert response["degraded"]["reason"] == "deadline"
        assert response["degraded"]["stale"] is True
        assert response["results"]
        assert response["degraded"]["stale_years"] == [30.0]

    def test_worker_crash_serves_stale_then_recovers(self, client):
        _query(client, [40.0])
        response = _query(client, [41.0], inject="crash")
        assert response["status"] == "degraded"
        assert response["degraded"]["reason"] == "backend-crash"
        assert response["results"]
        # The pool was rebuilt: the next query is ordinary.
        assert _query(client, [42.0])["status"] == "ok"

    def test_crash_without_stale_is_typed_error(self, client):
        response = client.query(
            WIDTH, "column", 0.0,
            num_patterns=NUM_PATTERNS + 7,  # a never-seen group
            inject="crash",
        )
        assert response["status"] == "error"
        assert response["error"]["type"] == "BackendCrashError"
        assert response["error"]["reason"] == "backend-crash"
        assert response["results"] == []

    def test_invalid_query_is_error_response_not_disconnect(self, client):
        bad = client.query(1, "column", 0.0)
        assert bad["status"] == "error"
        assert "width" in bad["error"]["message"]
        # Same connection keeps serving.
        assert client.ping()

    def test_garbage_line_survives_connection(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=30.0
        ) as sock:
            fp = sock.makefile("rb")
            sock.sendall(b"!!not json!!\n")
            error = decode(fp.readline())
            assert error["status"] == "error"
            sock.sendall(encode({"op": "ping", "id": 1}))
            assert decode(fp.readline())["status"] == "ok"

    def test_unknown_op_is_error(self, client):
        response = client.request({"op": "dance", "id": 5})
        assert response["status"] == "error"


class TestStaleIsolation:
    def test_stale_never_crosses_query_groups(self, server):
        """Degradation may serve another *year* of the same design and
        workload -- never another design's numbers."""
        with ServiceClient(port=server.port) as fresh:
            response = fresh.query(
                WIDTH, "am", 0.0,
                num_patterns=NUM_PATTERNS, inject="crash",
            )
        # No 'am' results exist anywhere in the LRU: typed error, not
        # a column-design record dressed up as stale data.
        assert response["status"] == "error"


class TestKernelPlumbing:
    def test_percell_server_matches_soa_direct(self):
        """``serve --kernel percell`` is record-compatible with the
        default soa backend on every field except the documented
        switched-cap float-association exception."""
        spec = QuerySpec(
            width=WIDTH, kind="column", years=(0.0, 10.0),
            num_patterns=NUM_PATTERNS, seed=1, cycle_ns=8.0,
        )
        config = ServiceConfig(
            port=0, store_dir=None, workers=1,
            characterize_patterns=CHAR_PATTERNS, kernel="percell",
        )
        with serve_in_background(config) as handle:
            with ServiceClient(port=handle.port) as client:
                served = client.results(
                    WIDTH, "column", [0.0, 10.0],
                    num_patterns=NUM_PATTERNS, cycle_ns=8.0,
                )
        direct = compute_direct(
            spec, characterize_patterns=CHAR_PATTERNS, kernel="soa"
        )
        assert len(served) == len(direct)
        for got, want in zip(served, direct):
            caps = got.pop("mean_switched_cap"), want.pop(
                "mean_switched_cap"
            )
            assert got == want
            assert caps[0] == pytest.approx(caps[1], rel=1e-12)

    def test_backend_normalizes_kernel(self):
        # ServiceConfig is a plain dataclass; the Backend validates.
        from repro.errors import ConfigError
        from repro.service.backend import Backend

        with pytest.raises(ConfigError) as err:
            Backend(kernel="sao")
        assert "soa" in str(err.value)  # did-you-mean hint

    def test_cli_rejects_unknown_kernel(self, capsys):
        with pytest.raises(SystemExit) as err:
            service_cli.main([
                "serve", "--port", "0", "--kernel", "nunba",
            ])
        assert err.value.code == 2
        assert "numba" in capsys.readouterr().err  # did-you-mean


class TestCli:
    def test_direct_writes_canonical_records(self, tmp_path, capsys):
        out = tmp_path / "direct.json"
        rc = service_cli.main([
            "direct", "--width", str(WIDTH), "--kind", "column",
            "--years", "0", "--patterns", str(NUM_PATTERNS),
            "--cycle-ns", "8.0",
            "--characterize-patterns", str(CHAR_PATTERNS),
            "--json", str(out),
        ])
        assert rc == 0
        records = json.loads(out.read_text())
        assert records[0]["year"] == 0.0
        assert records[0]["width"] == WIDTH
        # The file is canonical JSON (sorted keys, compact, one line).
        text = out.read_text()
        assert text == json.dumps(
            records, sort_keys=True, separators=(",", ":")
        ) + "\n"

    def test_query_subcommand_against_live_server(
        self, server, tmp_path, capsys
    ):
        out = tmp_path / "served.json"
        rc = service_cli.main([
            "query", "--port", str(server.port),
            "--width", str(WIDTH), "--kind", "column", "--years", "0",
            "--patterns", str(NUM_PATTERNS), "--cycle-ns", "8.0",
            "--json", str(out),
        ])
        assert rc == 0
        served = json.loads(out.read_text())
        assert served[0]["year"] == 0.0
        response = json.loads(capsys.readouterr().out)
        assert response["status"] == "ok"

    def test_query_against_dead_port_exits_2(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        rc = service_cli.main([
            "query", "--port", str(dead_port),
            "--width", str(WIDTH), "--years", "0",
        ])
        assert rc == 2
