"""Netlist builder, validation and levelization."""

import pytest

from repro.errors import CombinationalLoopError, NetlistError
from repro.nets.netlist import (
    CONST0,
    CONST1,
    Netlist,
    bits_to_int,
    int_to_bits,
)


def half_adder():
    nl = Netlist("ha")
    a, = nl.add_input_port("a", 1)
    b, = nl.add_input_port("b", 1)
    nl.add_output_port("sum", [nl.xor2(a, b)])
    nl.add_output_port("carry", [nl.and2(a, b)])
    return nl


class TestNets:
    def test_constants_reserved(self):
        nl = Netlist("t")
        assert nl.const0 == CONST0 == 0
        assert nl.const1 == CONST1 == 1
        assert nl.num_nets == 2

    def test_new_net_allocates_sequentially(self):
        nl = Netlist("t")
        first = nl.new_net("x")
        second = nl.new_net()
        assert second == first + 1
        assert nl.net_name(first) == "x"
        assert nl.net_name(second) == "n%d" % second

    def test_new_nets_bulk(self):
        nl = Netlist("t")
        nets = nl.new_nets(4, prefix="w")
        assert len(nets) == 4
        assert nl.net_name(nets[2]) == "w2"

    def test_new_nets_negative_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t").new_nets(-1)

    def test_bad_net_id_rejected(self):
        nl = Netlist("t")
        with pytest.raises(NetlistError):
            nl.net_name(99)
        with pytest.raises(NetlistError):
            nl.net_name(True)


class TestPorts:
    def test_input_port_nets_lsb_first(self):
        nl = Netlist("t")
        nets = nl.add_input_port("a", 3)
        assert len(nets) == 3
        assert nl.net_name(nets[0]) == "a[0]"
        assert all(nl.is_primary_input(n) for n in nets)

    def test_duplicate_port_rejected(self):
        nl = Netlist("t")
        nl.add_input_port("a", 1)
        with pytest.raises(NetlistError):
            nl.add_input_port("a", 2)
        with pytest.raises(NetlistError):
            nl.add_output_port("a", [nl.const0])

    def test_zero_width_port_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t").add_input_port("a", 0)

    def test_empty_output_port_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("t").add_output_port("p", [])

    def test_port_width(self):
        nl = half_adder()
        assert nl.input_ports["a"].width == 1
        assert nl.output_ports["sum"].width == 1


class TestAddCell:
    def test_returns_output_net_and_registers_driver(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        out = nl.inv(a)
        cell = nl.driver_of(out)
        assert cell is not None
        assert cell.cell_type.name == "INV"
        assert cell.inputs == (a,)

    def test_wrong_pin_count_rejected(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        with pytest.raises(NetlistError):
            nl.add_cell("AND2", [a])

    def test_double_drive_rejected(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        out = nl.inv(a)
        with pytest.raises(NetlistError):
            nl.add_cell("BUF", [a], output=out)

    def test_driving_constant_rejected(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        with pytest.raises(NetlistError):
            nl.add_cell("INV", [a], output=CONST0)

    def test_driving_primary_input_rejected(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        with pytest.raises(NetlistError):
            nl.add_cell("INV", [a], output=b)

    def test_group_tagging(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        nl.inv(a, group="g1")
        nl.buf(a, group="g1")
        nl.inv(a)
        assert len(nl.cells_in_group("g1")) == 2

    def test_group_enable_registration(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        nl.set_group_enable("g", a)
        assert nl.group_enables["g"] == a
        with pytest.raises(NetlistError):
            nl.set_group_enable("g", a)


class TestLevelize:
    def test_topological_order(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        x = nl.inv(a)
        y = nl.inv(x)
        nl.add_output_port("o", [y])
        order = nl.levelize()
        positions = {cell.output: k for k, cell in enumerate(order)}
        assert positions[x] < positions[y]

    def test_loop_detection(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        loop_net = nl.new_net()
        nl.add_cell("AND2", [a, loop_net])
        # Close the loop: drive loop_net from something downstream.
        first_out = nl.cells[0].output
        nl.add_cell("INV", [first_out], output=loop_net)
        with pytest.raises(CombinationalLoopError) as info:
            nl.levelize()
        assert len(info.value.cycle_members) == 2

    def test_levelize_cached_and_invalidated(self):
        nl = half_adder()
        first = nl.levelize()
        assert nl.levelize() is first
        a = nl.input_ports["a"].nets[0]
        nl.inv(a)
        assert nl.levelize() is not first

    def test_max_logic_depth(self):
        nl = Netlist("t")
        a, = nl.add_input_port("a", 1)
        x = a
        for _ in range(5):
            x = nl.inv(x)
        nl.add_output_port("o", [x])
        assert nl.max_logic_depth() == 5


class TestValidate:
    def test_undriven_output_rejected(self):
        nl = Netlist("t")
        nl.add_input_port("a", 1)
        dangling = nl.new_net()
        nl.add_output_port("o", [dangling])
        with pytest.raises(NetlistError):
            nl.validate()

    def test_undriven_cell_input_rejected(self):
        nl = Netlist("t")
        dangling = nl.new_net()
        out = nl.inv(dangling)
        nl.add_output_port("o", [out])
        with pytest.raises(NetlistError):
            nl.validate()

    def test_constant_outputs_allowed(self):
        nl = Netlist("t")
        nl.add_input_port("a", 1)
        nl.add_output_port("zero", [nl.const0])
        nl.validate()

    def test_stats(self):
        nl = half_adder()
        stats = nl.stats()
        assert stats["XOR2"] == 1
        assert stats["AND2"] == 1
        assert stats["cells"] == 2

    def test_repr(self):
        assert "ha" in repr(half_adder())


class TestBitHelpers:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_lsb_first(self):
        assert int_to_bits(1, 3) == [1, 0, 0]
        assert bits_to_int([0, 1]) == 2

    def test_value_too_wide_rejected(self):
        with pytest.raises(NetlistError):
            int_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(NetlistError):
            int_to_bits(-1, 3)

    def test_bad_bit_rejected(self):
        with pytest.raises(NetlistError):
            bits_to_int([0, 2])
