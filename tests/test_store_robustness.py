"""Crash/corruption fuzz and concurrency soak for the stores.

The robustness contract under test:

* a killed writer (torn artifact bytes, torn manifest line, leftover
  ``.tmp``) degrades to a counted cache miss and a rebuild -- never an
  exception;
* concurrent writers and a concurrent compactor lose no manifest
  records (the shard locks close the PR-5 read/rewrite race);
* ``compact()`` genuinely takes the same lock ``save()`` appends under.
"""

import json
import os
import threading

import pytest

from repro.arith import column_bypass_multiplier
from repro.errors import LockTimeoutError
from repro.experiments.store import (
    NUM_MANIFEST_SHARDS,
    ArtifactStore,
    artifact_digest,
)
from repro.faults.campaign import SiteReport
from repro.faults.store import CheckpointStore


@pytest.fixture(scope="module")
def netlist4():
    return column_bypass_multiplier(4)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _key(index, tag="soak"):
    return {"width": 4, "kind": "column", "tag": tag, "index": index}


class TestConcurrencySoak:
    def test_writers_plus_compactor_lose_no_records(self, store, netlist4):
        """Acceptance: >= 8 concurrent writers + 1 compactor; every
        record survives and every artifact stays loadable."""
        writers, per_writer = 8, 12
        errors = []
        stop = threading.Event()

        def write(worker):
            try:
                local = ArtifactStore(store.directory)
                for index in range(per_writer):
                    local.save(
                        "netlist", _key(worker * per_writer + index),
                        netlist4,
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def compact_loop():
            try:
                local = ArtifactStore(store.directory)
                while not stop.is_set():
                    local.compact()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(worker,))
            for worker in range(writers)
        ]
        compactor = threading.Thread(target=compact_loop)
        compactor.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        stop.set()
        compactor.join(timeout=120.0)
        assert not errors

        total = writers * per_writer
        store.compact()
        files = {record["file"] for record in store.manifest()}
        assert len(files) == total
        for index in range(total):
            digest = artifact_digest("netlist", _key(index))
            assert "netlist-%s.pkl" % digest[:32] in files
            assert store.load("netlist", _key(index)) is not None

    def test_record_saved_during_compact_survives(self, store, netlist4):
        """A save landing between compaction passes is never dropped."""
        store.save("netlist", _key(0, "pre"), netlist4)
        store.compact()
        store.save("netlist", _key(1, "post"), netlist4)
        assert store.compact() == 2
        assert len(store.manifest()) == 2


class TestArtifactCorruption:
    def test_truncated_artifact_is_counted_miss_then_rebuilt(
        self, store, netlist4
    ):
        key = _key(0, "torn")
        store.save("netlist", key, netlist4)
        path = store._path("netlist", key)
        data = open(path, "rb").read()
        with open(path, "wb") as fp:
            fp.write(data[: len(data) // 2])  # kill mid-save
        assert store.load("netlist", key) is None
        assert store.corruption["artifacts"] == 1
        # Rebuild: the normal get_or_build path recovers.
        rebuilt = store.get_or_build(
            "netlist", key, lambda: netlist4
        )
        assert rebuilt is not None
        assert store.load("netlist", key) is not None

    def test_leftover_tmp_file_is_harmless(self, store, netlist4):
        key = _key(0, "tmp")
        store.save("netlist", key, netlist4)
        path = store._path("netlist", key)
        with open(path + ".tmp", "wb") as fp:
            fp.write(b"partial write of a killed process")
        assert store.load("netlist", key) is not None
        assert store.corruption["artifacts"] == 0

    def test_torn_manifest_line_skipped_and_counted(self, store, netlist4):
        store.save("netlist", _key(0, "line"), netlist4)
        store.save("netlist", _key(1, "line"), netlist4)
        shard_path = store.shard_paths()[0]
        with open(shard_path, "a", encoding="utf-8") as fp:
            fp.write('{"kind": "netlist", "key": {"tr')  # torn append
        fresh = ArtifactStore(store.directory)
        records = fresh.manifest()
        assert len(records) == 2
        assert fresh.corruption["manifest_lines"] == 1
        # compact() rewrites the shard clean.
        fresh.compact()
        for path in fresh.shard_paths():
            for line in open(path, encoding="utf-8").read().splitlines():
                json.loads(line)

    def test_mid_file_garbage_skipped_not_fatal(self, store, netlist4):
        store.save("netlist", _key(0, "mid"), netlist4)
        shard_path = store.shard_paths()[0]
        original = open(shard_path, encoding="utf-8").read()
        with open(shard_path, "w", encoding="utf-8") as fp:
            fp.write("!!not json!!\n" + original)
        fresh = ArtifactStore(store.directory)
        assert len(fresh.manifest()) == 1
        assert fresh.corruption["manifest_lines"] == 1

    def test_unreadable_shard_is_empty_and_counted(self, store, netlist4):
        store.save("netlist", _key(0, "bin"), netlist4)
        shard_path = store.shard_paths()[0]
        with open(shard_path, "wb") as fp:
            fp.write(b"\xff\xfe\x00\x80 binary garbage \x00")
        fresh = ArtifactStore(store.directory)
        assert fresh.manifest() == []
        assert fresh.corruption["manifest_shards"] == 1
        # The artifact itself is untouched -- only its manifest record
        # was lost, and a later save/compact rebuilds the shard.
        assert fresh.load("netlist", _key(0, "bin")) is not None


class TestShardingAndLocking:
    def test_compact_blocks_on_a_held_shard_lock(self, store, netlist4):
        """Regression for the PR-5 race: compaction takes the same
        per-shard lock save() appends under, so it cannot interleave
        with a writer -- observable as a timeout when the lock is
        already held."""
        store.save("netlist", _key(0, "lock"), netlist4)
        shard_path = store.shard_paths()[0]
        shard = int(os.path.basename(shard_path)[len("manifest-"):][0], 16)
        contender = ArtifactStore(store.directory, lock_timeout_s=0.2)
        with store._shard_lock(shard):
            with pytest.raises(LockTimeoutError):
                contender.compact()
        # Lock released: compaction proceeds.
        assert contender.compact() == 1

    def test_save_blocks_on_a_held_shard_lock(self, store, netlist4):
        key = _key(0, "savelock")
        digest = artifact_digest("netlist", key)
        shard = store._shard_of_digest(digest)
        contender = ArtifactStore(store.directory, lock_timeout_s=0.2)
        with store._shard_lock(shard):
            with pytest.raises(LockTimeoutError):
                contender.save("netlist", key, netlist4)

    def test_records_land_on_the_digest_shard(self, store, netlist4):
        for index in range(24):
            store.save("netlist", _key(index, "shard"), netlist4)
        for path in store.shard_paths():
            name = os.path.basename(path)
            shard = int(name[len("manifest-"):][0], 16)
            for line in open(path, encoding="utf-8").read().splitlines():
                record = json.loads(line)
                assert store._shard_of_file(record["file"]) == shard
        assert len(store.manifest()) == 24

    def test_legacy_manifest_folded_by_compact(self, store, netlist4):
        store.save("netlist", _key(0, "legacy"), netlist4)
        [record] = store.manifest()
        # Rewind history: move the record into an unsharded manifest.
        for path in store.shard_paths():
            os.remove(path)
        with open(store._manifest_path(), "w", encoding="utf-8") as fp:
            fp.write(json.dumps(record) + "\n")
        assert store.compact() == 1
        assert not os.path.exists(store._manifest_path())
        assert len(store.manifest()) == 1


def _report(site_id):
    return SiteReport(
        label="site %s" % site_id, kind="stuck-at-0",
        corrupted_ops=4, detected_ops=4, silent_ops=0, razor_errors=4,
        undetectable_ops=0, recovered_ops=0, exhausted_ops=0,
        avg_latency_ns=5.0, indicator_aged_at=-1, site_id=site_id,
    )


class TestCheckpointCrashFuzz:
    FP = {"design": "fuzz", "seed": 7}

    def _write(self, path, count=3):
        store = CheckpointStore(str(path))
        store.open(self.FP)
        for index in range(count):
            store.append("s%d" % index, _report("s%d" % index))
        store.close()

    def test_killed_writer_resumes_from_last_complete_report(
        self, tmp_path
    ):
        path = tmp_path / "cp.jsonl"
        self._write(path)
        data = path.read_bytes()
        path.write_bytes(data[:-17])  # SIGKILL mid-append
        store = CheckpointStore(str(path))
        reports = store.open(self.FP)
        assert store.dropped_lines == 1
        assert sorted(reports) == ["s0", "s1"]
        # The append stream starts clean after the compacting open.
        store.append("s2", _report("s2"))
        store.close()
        assert sorted(CheckpointStore(str(path)).load(self.FP)) == [
            "s0", "s1", "s2",
        ]

    def test_killed_writer_tmp_leftover_ignored(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        self._write(path)
        with open(str(path) + ".tmp", "w", encoding="utf-8") as fp:
            fp.write('{"torn": tr')  # killed mid-compaction rewrite
        reports = CheckpointStore(str(path)).open(self.FP)
        assert sorted(reports) == ["s0", "s1", "s2"]

    def test_open_serializes_across_lock_holders(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        self._write(path)
        entered = threading.Event()
        release = threading.Event()
        opened = []

        def holder():
            from repro.util import FileLock

            with FileLock(str(path) + ".lock", timeout_s=5.0):
                entered.set()
                release.wait(timeout=10.0)

        def opener():
            entered.wait(timeout=10.0)
            store = CheckpointStore(str(path))
            store.open(self.FP)
            store.close()
            opened.append(True)

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=opener)]
        for t in threads:
            t.start()
        entered.wait(timeout=10.0)
        assert not opened  # opener is parked on the lock
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert opened == [True]
