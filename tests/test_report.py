"""Reproduction report rendering and the experiments CLI."""

import pytest

from repro.analysis.report import ClaimCheck, ReproductionReport
from repro.errors import SimulationError
from repro.experiments.__main__ import main as experiments_main


class TestReproductionReport:
    def test_sections_render_in_order(self):
        report = ReproductionReport(title="t")
        report.add_section("fig05", "body five", elapsed=1.5)
        report.add_section("fig06", "body six")
        text = report.render()
        assert text.index("fig05") < text.index("fig06")
        assert "(1.5 s)" in text
        assert "body five" in text

    def test_claims_table(self):
        report = ReproductionReport()
        report.add_claim("drift", "13%", "13.0%", True)
        report.add_claim("area", "22.9%", "12.1%", False)
        text = report.render()
        assert "1/2 hold" in text
        assert "| drift | 13% | 13.0% | yes |" in text
        assert "NO" in text
        assert report.claims_held == 1

    def test_empty_section_name_rejected(self):
        with pytest.raises(SimulationError):
            ReproductionReport().add_section("", "x")

    def test_write(self, tmp_path):
        report = ReproductionReport()
        report.add_section("s", "b")
        path = tmp_path / "report.md"
        report.write(str(path))
        assert "## s" in path.read_text()

    def test_claimcheck_dataclass(self):
        check = ClaimCheck("c", "p", "m", True)
        assert check.holds


class TestCli:
    def test_list_experiments(self, capsys):
        assert experiments_main([]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "ext_em" in out

    def test_run_one_with_report(self, tmp_path, capsys):
        path = tmp_path / "run.md"
        code = experiments_main(
            ["fig07", "--scale", "0.05", "--report", str(path)]
        )
        assert code == 0
        text = path.read_text()
        assert "fig07" in text
        assert "drift" in text.lower() or "column" in text
