"""Aging-aware variable-latency adder (the [20]-[21] lineage)."""

import dataclasses

import numpy as np
import pytest

from repro.arith.adders import adaptive_hold_rca
from repro.core.adder_architecture import AgingAwareAdder
from repro.errors import ConfigError, NetlistError, SimulationError
from repro.experiments import ext_vladder
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def adder():
    return AgingAwareAdder.build(16, characterize_patterns=400)


class TestAdaptiveHoldRca:
    def test_ports(self):
        nl = adaptive_hold_rca(16)
        assert set(nl.output_ports) == {"s", "hold", "hold_strict"}

    def test_still_adds_exactly(self):
        nl = adaptive_hold_rca(8, position=4)
        circuit = CompiledCircuit(nl)
        a, b = uniform_operands(8, 500, seed=43)
        result = circuit.run({"a": a, "b": b})
        assert np.array_equal(result.outputs["s"], a + b)

    def test_hold_functions(self):
        nl = adaptive_hold_rca(8, position=4)
        circuit = CompiledCircuit(nl)
        a, b = uniform_operands(8, 2000, seed=47)
        result = circuit.run({"a": a, "b": b})
        p = (a ^ b).astype(np.uint64)
        bit = lambda v, k: ((v >> np.uint64(k)) & np.uint64(1)).astype(bool)
        relaxed = bit(p, 4) & bit(p, 5)
        strict = (bit(p, 3) & bit(p, 4)) | relaxed
        assert np.array_equal(result.outputs["hold"].astype(bool), relaxed)
        assert np.array_equal(
            result.outputs["hold_strict"].astype(bool), strict
        )

    def test_strict_fires_at_least_as_often(self):
        nl = adaptive_hold_rca(16)
        circuit = CompiledCircuit(nl)
        a, b = uniform_operands(16, 2000, seed=53)
        result = circuit.run({"a": a, "b": b})
        assert np.all(
            result.outputs["hold"] <= result.outputs["hold_strict"]
        )

    def test_hold_probability_quarter(self):
        nl = adaptive_hold_rca(16)
        circuit = CompiledCircuit(nl)
        a, b = uniform_operands(16, 8000, seed=59)
        result = circuit.run({"a": a, "b": b})
        assert result.outputs["hold"].mean() == pytest.approx(0.25, abs=0.02)

    def test_bad_position_rejected(self):
        with pytest.raises(NetlistError):
            adaptive_hold_rca(8, position=0)
        with pytest.raises(NetlistError):
            adaptive_hold_rca(8, position=7)


class TestAgingAwareAdder:
    def test_sums_exact(self, adder):
        result = adder.run_random(1000, seed=61)
        a, b = None, None  # results carry the sums directly
        # Re-run with check_golden for the formal assertion.
        rng = np.random.default_rng(61)
        a = rng.integers(0, 1 << 16, 1000, dtype=np.uint64)
        b = rng.integers(0, 1 << 16, 1000, dtype=np.uint64)
        checked = adder.run_patterns(a, b, check_golden=True)
        assert checked.golden_ok is True

    def test_accounting_identity(self, adder):
        report = adder.run_random(1200, seed=67).report
        expected = (
            report.one_cycle_ops
            + 2 * report.two_cycle_ops
            + adder.config.razor_penalty_cycles * report.error_count
        )
        assert report.total_cycles == expected

    def test_one_cycle_ratio_three_quarters(self, adder):
        report = adder.run_random(3000, seed=71).report
        assert report.one_cycle_ratio == pytest.approx(0.75, abs=0.03)

    def test_fig4_average_latency_math(self, adder):
        """With no violations: avg = T * (0.75*1 + 0.25*2) = 1.25 T --
        the Fig. 4 arithmetic (6.25 vs 10 in cycle units)."""
        relaxed = adder.with_cycle(adder.critical_path_ns())
        report = relaxed.run_random(3000, seed=73).report
        assert report.error_count == 0
        assert report.average_cycles_per_op == pytest.approx(1.25, abs=0.03)

    def test_aging_flat_latency(self, adder):
        fresh = adder.run_random(2000, seed=79, years=0.0).report
        aged = adder.run_random(2000, seed=79, years=7.0).report
        growth = aged.average_latency_ns / fresh.average_latency_ns - 1
        assert growth < 0.05
        assert adder.critical_path_ns(7.0) > adder.critical_path_ns(0.0)

    def test_adaptive_not_worse_when_tight(self, adder):
        tight = adder.with_cycle(adder.critical_path_ns() / 3.0)
        traditional = dataclasses.replace(tight, adaptive=False, name="")
        adaptive_report = tight.run_random(3000, seed=83, years=7.0).report
        traditional_report = traditional.run_random(
            3000, seed=83, years=7.0
        ).report
        assert (
            adaptive_report.error_count <= traditional_report.error_count
        )

    def test_validation(self, adder):
        with pytest.raises(ConfigError):
            dataclasses.replace(adder, cycle_ns=0.0)
        with pytest.raises(SimulationError):
            adder.run_patterns(
                np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64)
            )


class TestExtVlAdder:
    def test_experiment_claims(self, ctx):
        result = ext_vladder.run(ctx, num_patterns=2000)
        assert result.growth("fixed") == pytest.approx(0.13, abs=0.02)
        assert result.growth("a-vl") < 0.03
        assert result.adaptive_never_worse()
        assert "a-vl" in result.render()
