"""Persistent artifact store: round trips, guards, manifest."""

import json
import os

import numpy as np
import pytest

from repro.aging import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.config import DEFAULT_SIM_CONFIG, DEFAULT_TECHNOLOGY
from repro.errors import ConfigError
from repro.experiments.store import (
    ArtifactStore,
    artifact_digest,
    config_fingerprint,
    counter_delta,
    delta_totals,
    technology_fingerprint,
)
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


@pytest.fixture(scope="module")
def netlist4():
    return column_bypass_multiplier(4)


@pytest.fixture(scope="module")
def stress4(netlist4):
    return AgedCircuitFactory.characterize_stress(
        netlist4, num_patterns=100, seed=3
    )


@pytest.fixture(scope="module")
def stream4(netlist4):
    md, mr = uniform_operands(4, 80, seed=5)
    circuit = CompiledCircuit(netlist4)
    return circuit.run(
        {"md": md, "mr": mr},
        collect_bit_arrivals=True,
        collect_net_stats=True,
    )


class TestFingerprints:
    def test_digest_stable_and_order_independent(self):
        a = artifact_digest("netlist", {"width": 4, "kind": "column"})
        b = artifact_digest("netlist", {"kind": "column", "width": 4})
        assert a == b
        assert a != artifact_digest("netlist", {"width": 8, "kind": "column"})
        # Same key under a different kind is a different artifact.
        assert a != artifact_digest("stress", {"width": 4, "kind": "column"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            artifact_digest("plane", {})

    def test_technology_fingerprint_sensitivity(self):
        base = technology_fingerprint(DEFAULT_TECHNOLOGY)
        bumped = technology_fingerprint(
            DEFAULT_TECHNOLOGY.replace(vdd=DEFAULT_TECHNOLOGY.vdd + 0.1)
        )
        assert base != bumped
        assert base == technology_fingerprint(DEFAULT_TECHNOLOGY)

    def test_config_fingerprint_stable(self):
        assert config_fingerprint(DEFAULT_SIM_CONFIG) == config_fingerprint(
            DEFAULT_SIM_CONFIG
        )


class TestRoundTrips:
    def test_netlist_round_trip(self, store, netlist4):
        key = {"width": 4, "kind": "column"}
        assert store.load("netlist", key) is None
        store.save("netlist", key, netlist4)
        loaded = store.load("netlist", key)
        assert loaded is not None
        assert loaded.name == netlist4.name
        assert len(loaded.cells) == len(netlist4.cells)
        assert loaded.stats() == netlist4.stats()

    def test_stress_round_trip(self, store, stress4):
        key = {"netlist": "abc", "seed": 3}
        store.save("stress", key, stress4)
        loaded = store.load("stress", key)
        assert loaded.netlist_name == stress4.netlist_name
        np.testing.assert_array_equal(
            loaded.pmos_stress, stress4.pmos_stress
        )
        np.testing.assert_array_equal(
            loaded.nmos_stress, stress4.nmos_stress
        )

    def test_stream_round_trip_lossless(self, store, stream4):
        key = {"stream": 1}
        store.save("stream", key, stream4)
        loaded = store.load("stream", key)
        assert loaded.num_patterns == stream4.num_patterns
        np.testing.assert_array_equal(loaded.delays, stream4.delays)
        np.testing.assert_array_equal(
            loaded.switched_caps, stream4.switched_caps
        )
        assert set(loaded.outputs) == set(stream4.outputs)
        for name in stream4.outputs:
            np.testing.assert_array_equal(
                loaded.outputs[name], stream4.outputs[name]
            )
        for name in stream4.bit_arrivals:
            np.testing.assert_array_equal(
                loaded.bit_arrivals[name], stream4.bit_arrivals[name]
            )
        np.testing.assert_array_equal(
            loaded.signal_prob, stream4.signal_prob
        )
        np.testing.assert_array_equal(
            loaded.toggle_counts, stream4.toggle_counts
        )

    def test_stream_without_optionals(self, store, netlist4):
        md, mr = uniform_operands(4, 50, seed=7)
        result = CompiledCircuit(netlist4).run({"md": md, "mr": mr})
        store.save("stream", {"bare": 1}, result)
        loaded = store.load("stream", {"bare": 1})
        assert loaded.bit_arrivals is None
        assert loaded.signal_prob is None
        np.testing.assert_array_equal(loaded.delays, result.delays)

    def test_netlist_type_checked(self, store):
        with pytest.raises(ConfigError):
            store.save("netlist", {"w": 1}, "not a netlist")


class TestGuards:
    def test_key_mismatch_is_miss(self, store, netlist4, tmp_path):
        """A hash-colliding (here: hand-renamed) file must not satisfy a
        different key -- the embedded key is the authority."""
        store.save("netlist", {"width": 4}, netlist4)
        src = store._path("netlist", {"width": 4})
        dst = store._path("netlist", {"width": 8})
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        import shutil

        shutil.copy(src, dst)
        assert store.load("netlist", {"width": 8}) is None

    def test_corrupt_file_is_miss(self, store, stream4):
        key = {"stream": 1}
        store.save("stream", key, stream4)
        with open(store._path("stream", key), "wb") as fp:
            fp.write(b"garbage")
        assert store.load("stream", key) is None

    def test_get_or_build_builds_once(self, store, netlist4):
        calls = []

        def build():
            calls.append(1)
            return netlist4

        first = store.get_or_build("netlist", {"w": 4}, build)
        second = store.get_or_build("netlist", {"w": 4}, build)
        assert len(calls) == 1
        assert first.stats() == second.stats()

    def test_corrupt_entry_rebuilt(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        with open(store._path("netlist", {"w": 4}), "wb") as fp:
            fp.write(b"\x00")
        rebuilt = store.get_or_build(
            "netlist", {"w": 4}, lambda: netlist4
        )
        assert rebuilt.stats() == netlist4.stats()
        # ... and the rebuild repaired the on-disk entry.
        assert store.load("netlist", {"w": 4}) is not None

    def test_empty_directory_rejected(self):
        with pytest.raises(ConfigError):
            ArtifactStore("")


class TestCounters:
    def test_hit_miss_write_accounting(self, store, netlist4):
        assert store.load("netlist", {"w": 4}) is None
        store.save("netlist", {"w": 4}, netlist4)
        store.load("netlist", {"w": 4})
        assert store.counters["netlist"] == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
        }
        assert store.counter_totals() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
        }

    def test_snapshot_delta(self, store, netlist4):
        before = store.snapshot()
        store.save("netlist", {"w": 4}, netlist4)
        store.load("netlist", {"w": 4})
        delta = counter_delta(before, store.snapshot())
        assert delta == {"netlist": {"hits": 1, "misses": 0, "writes": 1}}
        assert delta_totals(delta) == {"hits": 1, "misses": 0, "writes": 1}
        # The snapshot is a copy, not a view.
        assert before["netlist"]["writes"] == 0

    def test_merge_counters(self, store):
        store.merge_counters({"stream": {"hits": 3, "misses": 2, "writes": 2}})
        store.merge_counters({"stream": {"hits": 1, "misses": 0, "writes": 0}})
        assert store.counters["stream"] == {
            "hits": 4,
            "misses": 2,
            "writes": 2,
        }


class TestManifest:
    def test_records_every_write(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        store.save("netlist", {"w": 8}, column_bypass_multiplier(4))
        records = store.manifest()
        assert len(records) == 2
        assert {r["kind"] for r in records} == {"netlist"}
        for record in records:
            assert os.path.exists(
                os.path.join(store.directory, record["file"])
            )

    def test_torn_trailing_line_tolerated(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        with open(store._manifest_path(), "a", encoding="utf-8") as fp:
            fp.write('{"kind": "netlist", "truncat')  # killed mid-write
        assert len(store.manifest()) == 1

    def test_mid_file_garbage_skipped(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        with open(store._manifest_path(), "a", encoding="utf-8") as fp:
            fp.write("not json\n")
        store.save("netlist", {"w": 8}, netlist4)
        assert len(store.manifest()) == 2

    def test_compact_dedupes_and_drops_missing(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        store.save("netlist", {"w": 4}, netlist4)  # duplicate record
        store.save("netlist", {"w": 8}, netlist4)
        os.remove(store._path("netlist", {"w": 8}))
        assert store.compact() == 1
        records = store.manifest()
        assert len(records) == 1
        assert records[0]["file"] == os.path.basename(
            store._path("netlist", {"w": 4})
        )
        # Compacted manifest shards are valid canonical JSONL.
        assert store.shard_paths()
        for path in store.shard_paths():
            with open(path, encoding="utf-8") as fp:
                for line in fp.read().splitlines():
                    json.loads(line)

    def test_empty_store_manifest(self, store):
        assert store.manifest() == []
        assert store.compact() == 0


class TestMaintenance:
    def test_clear_removes_everything(self, store, netlist4):
        store.save("netlist", {"w": 4}, netlist4)
        os.makedirs(store.planes_dir(), exist_ok=True)
        store.clear()
        assert not os.path.isdir(store.directory)
        assert store.counter_totals() == {
            "hits": 0,
            "misses": 0,
            "writes": 0,
        }
        # The store keeps working after a clear.
        store.save("netlist", {"w": 4}, netlist4)
        assert store.load("netlist", {"w": 4}) is not None

    def test_campaigns_dir_created(self, store):
        path = store.campaigns_dir()
        assert os.path.isdir(path)
        assert path.startswith(store.directory)
