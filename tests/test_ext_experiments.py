"""Extension experiments: EM lifetime, baselines, workloads, faults."""

import pytest

from repro.experiments import (
    ext_baselines,
    ext_em,
    ext_faults,
    ext_workloads,
)


class TestExtBaselines:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return ext_baselines.run(ctx, num_patterns=1500)

    def test_all_designs_present(self, result):
        assert set(result.stats) == {
            "am", "column", "row", "wallace", "dadda", "booth",
        }

    def test_bypassing_most_predictable(self, result):
        """Zero-count/delay correlation: the architectural reason the
        paper hosts variable latency on bypassing multipliers."""
        stats = result.stats
        for bypass in ("column", "row"):
            for tree in ("wallace", "booth"):
                assert (
                    stats[bypass].zero_delay_correlation
                    < stats[tree].zero_delay_correlation
                )
        assert stats["column"].zero_delay_correlation < -0.2

    def test_tree_multipliers_tighter_spread(self, result):
        stats = result.stats
        assert stats["wallace"].spread < stats["column"].spread
        assert stats["booth"].spread < stats["row"].spread

    def test_tree_multipliers_beat_am_critical_path(self, result):
        assert (
            result.stats["wallace"].critical_ns
            < result.stats["am"].critical_ns
        )
        assert (
            result.stats["dadda"].critical_ns
            < result.stats["wallace"].critical_ns
        )

    def test_render(self, result):
        assert "wallace" in result.render()


class TestExtWorkloads:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return ext_workloads.run(ctx, num_patterns=1500)

    def test_all_products_exact(self, result):
        assert all(row.products_exact for row in result.rows.values())

    def test_fir_has_higher_one_cycle_potential(self, result):
        """Filter taps are zero-rich: the relaxed judging block would
        classify more FIR patterns one-cycle than uniform ones."""
        assert (
            result.rows["fir"].one_cycle_potential
            > result.rows["uniform"].one_cycle_potential
        )

    def test_realized_never_exceeds_potential(self, result):
        for row in result.rows.values():
            assert row.one_cycle_ratio <= row.one_cycle_potential + 1e-9

    def test_everything_beats_fixed_latency(self, result):
        for row in result.rows.values():
            assert row.improvement_vs_fixed > 0.2


class TestExtEm:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return ext_em.run(
            ctx, num_patterns=800, years=(0.0, 5.0, 10.0)
        )

    def test_em_compounds_fixed_degradation(self, result):
        for fixed in ("flcb", "flrb"):
            assert result.growth("combined", fixed) > result.growth(
                "bti", fixed
            )

    def test_adaptive_tolerates_combined_aging(self, result):
        """The Section V claim: under BTI + EM the adaptive designs
        still degrade an order of magnitude less than fixed ones."""
        for kind in ("cb", "rb"):
            fixed = result.growth("combined", "fl%s" % kind)
            adaptive = result.growth("combined", "a-vl%s" % kind)
            assert adaptive < fixed / 3

    def test_render(self, result):
        assert "BTI+EM" in result.render()


class TestExtFaults:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return ext_faults.run(ctx, num_sites=40, num_patterns=400)

    def test_delay_faults_fully_covered(self, result):
        """Razor is a timing monitor: every corruption a delay fault can
        cause is a late arrival, which Razor samples for."""
        assert result.coverage("delay") == 1.0

    def test_value_corruption_mostly_silent(self, result):
        assert result.coverage("stuck-at-0") < 0.5
        assert result.coverage("stuck-at-1") < 0.5
        assert result.campaign.silent_corruption_rate() > 0

    def test_campaign_never_aborts(self, result):
        assert result.campaign.num_sites == 40
        assert result.campaign.baseline.report.policy == "degrade"

    def test_hotspot_trips_indicator(self, result):
        hotspot = result.hotspot
        assert hotspot.errors["traditional"] > hotspot.pristine_errors
        assert hotspot.adaptive_aged_at >= 0
        assert (
            hotspot.errors["adaptive"] < hotspot.errors["traditional"]
        )

    def test_render(self, result):
        text = result.render()
        assert "fault kind" in text
        assert "hot-spot" in text
