"""Workload generators."""

import numpy as np
import pytest

from repro.arith.reference import count_zeros
from repro.errors import WorkloadError
from repro.workloads import (
    PatternStream,
    operands_with_zero_count,
    uniform_operands,
    walking_ones,
    zero_weighted_operands,
)


class TestUniform:
    def test_deterministic_per_seed(self):
        first = uniform_operands(16, 100, seed=5)
        second = uniform_operands(16, 100, seed=5)
        different = uniform_operands(16, 100, seed=6)
        assert np.array_equal(first[0], second[0])
        assert not np.array_equal(first[0], different[0])

    def test_values_fit_width(self):
        md, mr = uniform_operands(10, 1000, seed=1)
        assert md.max() < 1 << 10
        assert mr.max() < 1 << 10

    def test_bad_args_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_operands(0, 10)
        with pytest.raises(WorkloadError):
            uniform_operands(8, 0)
        with pytest.raises(WorkloadError):
            uniform_operands(64, 10)


class TestZeroCount:
    @pytest.mark.parametrize("zeros", [0, 3, 8, 16])
    def test_exact_zero_count(self, zeros):
        values = operands_with_zero_count(16, 200, zeros, seed=2)
        assert np.all(count_zeros(values, 16) == zeros)

    def test_bad_zero_count_rejected(self):
        with pytest.raises(WorkloadError):
            operands_with_zero_count(8, 10, 9)

    def test_patterns_vary(self):
        values = operands_with_zero_count(16, 100, 8, seed=3)
        assert len(set(values.tolist())) > 50


class TestZeroWeighted:
    def test_probability_shifts_density(self):
        sparse = zero_weighted_operands(16, 3000, 0.2, seed=4)
        dense = zero_weighted_operands(16, 3000, 0.8, seed=4)
        assert count_zeros(sparse, 16).mean() > count_zeros(dense, 16).mean()

    def test_extremes(self):
        zeros = zero_weighted_operands(8, 10, 0.0)
        ones = zero_weighted_operands(8, 10, 1.0)
        assert np.all(zeros == 0)
        assert np.all(ones == 255)

    def test_bad_probability_rejected(self):
        with pytest.raises(WorkloadError):
            zero_weighted_operands(8, 10, 1.5)


class TestWalkingOnes:
    def test_single_bit_set(self):
        values = walking_ones(8, 20)
        assert np.all(count_zeros(values, 8) == 7)

    def test_wraps_around(self):
        values = walking_ones(4, 8)
        assert values.tolist() == [1, 2, 4, 8, 1, 2, 4, 8]


class TestPatternStream:
    def test_uniform_factory(self):
        stream = PatternStream.uniform(8, 250, seed=9)
        assert stream.num_patterns == 250
        assert stream.width == 8

    def test_windows(self):
        stream = PatternStream.uniform(8, 250, seed=9)
        windows = list(stream.windows(100))
        assert [len(md) for md, _ in windows] == [100, 100, 50]

    def test_bad_window_rejected(self):
        stream = PatternStream.uniform(8, 10, seed=9)
        with pytest.raises(WorkloadError):
            list(stream.windows(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            PatternStream(
                "bad", 8,
                np.zeros(3, dtype=np.uint64),
                np.zeros(4, dtype=np.uint64),
            )
