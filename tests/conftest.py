"""Shared fixtures.

Session-scoped, because netlist generation and characterization dominate
test wall-clock: the 16x16 multipliers and the experiment context are
built once and shared read-only across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arith import (
    array_multiplier,
    column_bypass_multiplier,
    row_bypass_multiplier,
)
from repro.experiments.context import ExperimentContext
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


@pytest.fixture(scope="session")
def am4():
    return array_multiplier(4)


@pytest.fixture(scope="session")
def cb4():
    return column_bypass_multiplier(4)


@pytest.fixture(scope="session")
def rb4():
    return row_bypass_multiplier(4)


@pytest.fixture(scope="session")
def cb16():
    return column_bypass_multiplier(16)


@pytest.fixture(scope="session")
def am16():
    return array_multiplier(16)


@pytest.fixture(scope="session")
def rb16():
    return row_bypass_multiplier(16)


@pytest.fixture(scope="session")
def cb16_circuit(cb16):
    return CompiledCircuit(cb16)


@pytest.fixture(scope="session")
def stream16():
    return uniform_operands(16, 2000, seed=11)


@pytest.fixture(scope="session")
def exhaustive4():
    """All 256 operand pairs for 4-bit multipliers."""
    n = 16
    a = np.repeat(np.arange(n, dtype=np.uint64), n)
    b = np.tile(np.arange(n, dtype=np.uint64), n)
    return a, b


@pytest.fixture(scope="session")
def ctx():
    """Small-scale experiment context shared by experiment tests."""
    return ExperimentContext(scale=0.05, characterize_patterns=400)
