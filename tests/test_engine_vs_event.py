"""Cross-validation: vectorized engine vs event-driven reference.

The floating-mode engine's arrivals are designed to upper-bound the
transport-delay event simulation, and all engines must agree on settled
values.  These tests drive the real multiplier netlists with random
two-vector stimuli and check both properties pattern by pattern.
"""

import numpy as np
import pytest

from repro.arith import (
    array_multiplier,
    column_bypass_multiplier,
    row_bypass_multiplier,
)
from repro.experiments.sweep import RETYPE_SWAPS
from repro.nets import Mutation, apply_mutations
from repro.timing import CompiledCircuit, EventSimulator, patch_compiled
from repro.workloads import uniform_operands

WIDTH = 5
NUM_PAIRS = 40


@pytest.fixture(
    scope="module",
    params=["am", "cb", "rb"],
)
def design(request):
    generator = {
        "am": array_multiplier,
        "cb": column_bypass_multiplier,
        "rb": row_bypass_multiplier,
    }[request.param]
    netlist = generator(WIDTH)
    return {
        "netlist": netlist,
        "floating": CompiledCircuit(netlist, mode="floating"),
        "inertial": CompiledCircuit(netlist, mode="inertial"),
        "event": EventSimulator(netlist),
    }


@pytest.fixture(scope="module")
def stimulus():
    md, mr = uniform_operands(WIDTH, NUM_PAIRS + 1, seed=21)
    return md, mr


def test_values_agree_with_event_sim(design, stimulus):
    md, mr = stimulus
    stream = design["floating"].run({"md": md, "mr": mr})
    for k in range(1, NUM_PAIRS + 1):
        event = design["event"].run_pair(
            {"md": int(md[k - 1]), "mr": int(mr[k - 1])},
            {"md": int(md[k]), "mr": int(mr[k])},
        )
        assert event.outputs["p"] == int(stream.outputs["p"][k]), k


def test_floating_arrival_upper_bounds_event_settle(design, stimulus):
    md, mr = stimulus
    stream = design["floating"].run({"md": md, "mr": mr})
    for k in range(1, NUM_PAIRS + 1):
        event = design["event"].run_pair(
            {"md": int(md[k - 1]), "mr": int(mr[k - 1])},
            {"md": int(md[k]), "mr": int(mr[k])},
        )
        assert event.settle_time <= stream.delays[k] + 1e-9, (
            "pattern %d: event settle %.4f > floating bound %.4f"
            % (k, event.settle_time, stream.delays[k])
        )


def test_inertial_below_floating(design, stimulus):
    md, mr = stimulus
    floating = design["floating"].run({"md": md, "mr": mr})
    inertial = design["inertial"].run({"md": md, "mr": mr})
    assert np.all(inertial.delays <= floating.delays + 1e-9)


def test_patched_plan_agrees_with_event_sim(design, stimulus):
    """A patched plan (repro.timing.delta) is a first-class engine:
    running a mutated netlist through ``patch_compiled`` must satisfy
    the same event-simulator cross-validation as a from-scratch
    compile -- identical settled values, floating arrivals bounding the
    event settle time."""
    netlist = design["netlist"]
    index = next(
        cell.index
        for cell in netlist.cells
        if cell.group is None and cell.cell_type.name in RETYPE_SWAPS
    )
    swap = RETYPE_SWAPS[netlist.cells[index].cell_type.name]
    child = apply_mutations(netlist, [Mutation(index, swap)])
    patched = patch_compiled(design["floating"], child)
    event = EventSimulator(child)

    md, mr = stimulus
    stream = patched.run({"md": md, "mr": mr})
    scratch = CompiledCircuit(child, mode="floating").run(
        {"md": md, "mr": mr}
    )
    assert np.array_equal(stream.outputs["p"], scratch.outputs["p"])
    assert np.array_equal(stream.delays, scratch.delays)
    for k in range(1, NUM_PAIRS + 1):
        pair = event.run_pair(
            {"md": int(md[k - 1]), "mr": int(mr[k - 1])},
            {"md": int(md[k]), "mr": int(mr[k])},
        )
        assert pair.outputs["p"] == int(stream.outputs["p"][k]), k
        assert pair.settle_time <= stream.delays[k] + 1e-9, k


def test_event_per_bit_times_bounded_by_floating(design, stimulus):
    md, mr = stimulus
    stream = design["floating"].run(
        {"md": md, "mr": mr}, collect_bit_arrivals=True
    )
    arrivals = stream.bit_arrivals["p"]
    for k in range(1, NUM_PAIRS + 1):
        event = design["event"].run_pair(
            {"md": int(md[k - 1]), "mr": int(mr[k - 1])},
            {"md": int(md[k]), "mr": int(mr[k])},
        )
        for bit, last_change in enumerate(event.bit_last_change["p"]):
            assert last_change <= arrivals[bit, k] + 1e-9, (k, bit)
