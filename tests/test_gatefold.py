"""Constant-folding gate helpers."""

import itertools

import pytest

from repro.arith.gatefold import (
    fold_and,
    fold_mux,
    fold_or,
    fold_xnor,
    fold_xor,
)
from repro.nets.netlist import CONST0, CONST1, Netlist
from repro.timing import CompiledCircuit

FOLDS = {
    "and": (fold_and, lambda a, b: a & b),
    "or": (fold_or, lambda a, b: a | b),
    "xor": (fold_xor, lambda a, b: a ^ b),
    "xnor": (fold_xnor, lambda a, b: 1 - (a ^ b)),
}


@pytest.mark.parametrize("name", sorted(FOLDS))
def test_constant_inputs_fold_exactly(name):
    fold, reference = FOLDS[name]
    for a_const, b_const in itertools.product((0, 1), repeat=2):
        nl = Netlist("f")
        rails = {0: CONST0, 1: CONST1}
        result = fold(nl, rails[a_const], rails[b_const])
        assert result == rails[reference(a_const, b_const)]
        assert len(nl.cells) == 0  # nothing emitted


@pytest.mark.parametrize("name", sorted(FOLDS))
def test_one_constant_one_live(name):
    fold, reference = FOLDS[name]
    for const in (0, 1):
        nl = Netlist("f")
        live = nl.add_input_port("x", 1)[0]
        rails = {0: CONST0, 1: CONST1}
        out = fold(nl, live, rails[const])
        if out in (CONST0, CONST1):
            expected = {reference(0, const), reference(1, const)}
            assert expected == {0 if out == CONST0 else 1}
            continue
        nl.add_output_port("o", [out])
        circuit = CompiledCircuit(nl)
        got = circuit.run({"x": [0, 1]}).outputs["o"]
        assert got.tolist() == [reference(0, const), reference(1, const)]


def test_identical_operands_fold():
    nl = Netlist("f")
    x = nl.add_input_port("x", 1)[0]
    assert fold_and(nl, x, x) == x
    assert fold_or(nl, x, x) == x
    assert fold_xor(nl, x, x) == CONST0
    assert len(nl.cells) == 0


def test_mux_folds():
    nl = Netlist("f")
    x = nl.add_input_port("x", 1)[0]
    y = nl.add_input_port("y", 1)[0]
    s = nl.add_input_port("s", 1)[0]
    assert fold_mux(nl, x, y, CONST0) == x
    assert fold_mux(nl, x, y, CONST1) == y
    assert fold_mux(nl, x, x, s) == x
    live = fold_mux(nl, x, y, s)
    assert live not in (x, y)
    assert len(nl.cells) == 1
