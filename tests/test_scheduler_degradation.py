"""Suite scheduler degradation: failed workers become error records.

A raising experiment or a worker killed mid-run used to abort the whole
parallel suite; now it degrades to a per-experiment error entry while
every other experiment completes, and the CLI surfaces the failures in
the accounting table and its exit status.

The injected specs live in :mod:`repro.experiments._testing`; setting
``REPRO_TEST_EXPERIMENTS`` makes worker processes register them too
(the registry hook fires on import in each spawned worker).
"""

import pytest

from repro.experiments import __main__ as experiments_cli
from repro.experiments._testing import register_test_experiments
from repro.experiments.scheduler import run_suite


@pytest.fixture(autouse=True)
def test_specs(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_EXPERIMENTS", "1")
    register_test_experiments()


class TestRaisingSpec:
    def test_error_recorded_others_complete(self):
        suite = run_suite(
            names=["_test_ok", "_test_raise", "_test_slow"], jobs=2,
        )
        assert [e.name for e in suite.failures()] == ["_test_raise"]
        entry = suite.entry("_test_raise")
        assert entry.error == "RuntimeError: injected failure"
        assert entry.rendered.startswith("ERROR:")
        assert suite.entry("_test_ok").error is None
        assert suite.entry("_test_ok").rendered == "test experiment ok"
        assert suite.entry("_test_slow").error is None

    def test_failures_surface_in_accounting_table(self):
        suite = run_suite(names=["_test_ok", "_test_raise"], jobs=2)
        rendered = suite.render()
        assert "failed: 1 of 2 experiments" in rendered
        assert "_test_raise -- RuntimeError: injected failure" in rendered

    def test_on_result_emits_error_entries_in_request_order(self):
        seen = []
        run_suite(
            names=["_test_slow", "_test_raise", "_test_ok"], jobs=2,
            on_result=lambda entry: seen.append(entry.name),
        )
        assert seen == ["_test_slow", "_test_raise", "_test_ok"]


class TestCrashingSpec:
    def test_killed_worker_degrades_to_error_record(self):
        """Acceptance: an os._exit worker breaks the pool; the pool is
        rebuilt, innocents complete, the crasher becomes a typed error
        record."""
        suite = run_suite(
            names=["_test_slow", "_test_crash", "_test_ok"], jobs=2,
        )
        assert [e.name for e in suite.failures()] == ["_test_crash"]
        assert "worker process died" in suite.entry("_test_crash").error
        assert suite.entry("_test_slow").rendered == "test experiment ok"
        assert suite.entry("_test_ok").rendered == "test experiment ok"

    def test_all_entries_present_and_ordered(self):
        names = ["_test_ok", "_test_crash", "_test_slow"]
        suite = run_suite(names=names, jobs=2)
        assert [e.name for e in suite.entries] == names
        assert all(e is not None for e in suite.entries)


class TestCliExitCodes:
    def test_failed_suite_exits_1(self, capsys):
        rc = experiments_cli.main(["_test_ok,_test_raise", "--jobs", "2"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "failed: 1 of 2 experiments" in out

    def test_clean_suite_exits_0(self, capsys):
        rc = experiments_cli.main(["_test_ok,_test_slow", "--jobs", "2"])
        assert rc == 0
        assert "failed:" not in capsys.readouterr().out
