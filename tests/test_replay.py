"""Two-plane engine: value plane + arrival replay must be bit-identical
to the single-pass :meth:`CompiledCircuit.run` for every mode, chunking,
fault-hook and corner combination."""

import numpy as np
import pytest

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.errors import SimulationError
from repro.faults.injector import compile_with_faults
from repro.faults.models import StuckAtFault, TransientBitFlip
from repro.timing import (
    ArrivalReplay,
    CompiledCircuit,
    StaticTiming,
    ValuePlaneCache,
    build_value_plane,
    plane_cache_key,
)
from repro.timing.sta import critical_delays
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def cb8():
    return column_bypass_multiplier(8)


@pytest.fixture(scope="module")
def stream8():
    md, mr = uniform_operands(8, 600, seed=3)
    return {"md": md, "mr": mr}


def assert_streams_identical(got, want, bit_arrivals=False, stats=False):
    assert got.num_patterns == want.num_patterns
    for name, values in want.outputs.items():
        assert np.array_equal(got.outputs[name], values)
    assert np.array_equal(got.delays, want.delays)
    assert np.array_equal(got.switched_caps, want.switched_caps)
    if bit_arrivals:
        for name, matrix in want.bit_arrivals.items():
            assert np.array_equal(got.bit_arrivals[name], matrix)
    if stats:
        assert np.array_equal(got.signal_prob, want.signal_prob)
        assert np.array_equal(got.toggle_counts, want.toggle_counts)


def scales_for(circuit, k, seed=5):
    rng = np.random.default_rng(seed)
    num_cells = len(circuit.netlist.cells)
    return 1.0 + rng.uniform(0.0, 0.4, (k, num_cells))


class TestReplayEquivalence:
    @pytest.mark.parametrize("mode", ["inertial", "floating"])
    def test_batched_replay_matches_serial_runs(self, cb8, stream8, mode):
        circuit = CompiledCircuit(cb8, mode=mode)
        plane = build_value_plane(circuit, stream8, collect_net_stats=True)
        scales = scales_for(circuit, 3)
        replayed = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        for k in range(3):
            want = circuit.with_delay_scale(scales[k]).run(
                stream8,
                collect_bit_arrivals=True,
                collect_net_stats=True,
            )
            assert_streams_identical(
                replayed.stream_result(k),
                want,
                bit_arrivals=True,
                stats=True,
            )

    @pytest.mark.parametrize("mode", ["inertial", "floating"])
    def test_unit_scale_replay_matches_plain_run(self, cb8, stream8, mode):
        circuit = CompiledCircuit(cb8, mode=mode)
        plane = build_value_plane(circuit, stream8)
        got = ArrivalReplay(circuit, plane).stream(
            collect_bit_arrivals=True
        )
        want = circuit.run(stream8, collect_bit_arrivals=True)
        assert_streams_identical(got, want, bit_arrivals=True)

    def test_chunked_plane_matches_unchunked(self, cb8, stream8):
        circuit = CompiledCircuit(cb8)
        scales = scales_for(circuit, 2)
        whole = build_value_plane(circuit, stream8, chunk_size=10_000)
        chunked = build_value_plane(circuit, stream8, chunk_size=128)
        assert np.array_equal(whole.may_packed, chunked.may_packed)
        assert np.array_equal(whole.aux_packed, chunked.aux_packed)
        a = ArrivalReplay(circuit, whole).replay(scales)
        b = ArrivalReplay(circuit, chunked).replay(scales)
        assert np.array_equal(a.delays, b.delays)

    def test_replay_matches_chunked_reference_run(self, cb8, stream8):
        circuit = CompiledCircuit(cb8)
        scales = scales_for(circuit, 2)
        plane = build_value_plane(circuit, stream8)
        replayed = ArrivalReplay(circuit, plane).replay(scales)
        for k in range(2):
            want = circuit.with_delay_scale(scales[k]).run(
                stream8, chunk_size=96
            )
            assert_streams_identical(replayed.stream_result(k), want)

    def test_replay_with_fault_hooks(self, cb8, stream8):
        faults = [
            StuckAtFault(net=cb8.cells[10].output, value=1),
            TransientBitFlip(net=cb8.cells[40].output, rate=0.1, seed=2),
        ]
        circuit = compile_with_faults(cb8, faults)
        scales = scales_for(circuit, 2)
        plane = build_value_plane(circuit, stream8)
        replayed = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        for k in range(2):
            want = circuit.with_delay_scale(scales[k]).run(
                stream8, collect_bit_arrivals=True
            )
            assert_streams_identical(
                replayed.stream_result(k), want, bit_arrivals=True
            )

    def test_initial_condition_respected(self, cb8):
        circuit = CompiledCircuit(cb8)
        stim = {"md": [7, 7, 3], "mr": [5, 5, 9]}
        initial = {"md": 0, "mr": 255}
        plane = build_value_plane(circuit, stim, initial=initial)
        got = ArrivalReplay(circuit, plane).stream()
        want = circuit.run(stim, initial=initial)
        assert_streams_identical(got, want)

    def test_mismatched_plane_rejected(self, cb8, stream8):
        inertial = CompiledCircuit(cb8, mode="inertial")
        floating = CompiledCircuit(cb8, mode="floating")
        plane = build_value_plane(inertial, stream8)
        with pytest.raises(SimulationError):
            ArrivalReplay(floating, plane)

    def test_bad_delay_scales_rejected(self, cb8, stream8):
        circuit = CompiledCircuit(cb8)
        plane = build_value_plane(circuit, stream8)
        replay = ArrivalReplay(circuit, plane)
        num_cells = len(cb8.cells)
        with pytest.raises(SimulationError):
            replay.replay(np.ones((2, num_cells + 1)))
        with pytest.raises(SimulationError):
            replay.replay(np.zeros((1, num_cells)))


class TestValuePlaneCache:
    def test_memory_hit(self, cb8, stream8):
        circuit = CompiledCircuit(cb8)
        cache = ValuePlaneCache()
        first = cache.get_or_build(circuit, stream8)
        second = cache.get_or_build(circuit, stream8)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_disk_round_trip(self, cb8, stream8, tmp_path):
        circuit = CompiledCircuit(cb8)
        writer = ValuePlaneCache(directory=str(tmp_path))
        plane = writer.get_or_build(circuit, stream8)
        reader = ValuePlaneCache(directory=str(tmp_path))
        loaded = reader.get_or_build(circuit, stream8)
        assert reader.disk_hits == 1
        assert np.array_equal(plane.may_packed, loaded.may_packed)
        assert np.array_equal(plane.aux_packed, loaded.aux_packed)
        got = ArrivalReplay(circuit, loaded).stream()
        assert_streams_identical(got, circuit.run(stream8))

    def test_corrupt_file_rebuilds(self, cb8, stream8, tmp_path):
        circuit = CompiledCircuit(cb8)
        writer = ValuePlaneCache(directory=str(tmp_path))
        writer.get_or_build(circuit, stream8)
        for path in tmp_path.iterdir():
            path.write_bytes(b"junk")
        reader = ValuePlaneCache(directory=str(tmp_path))
        plane = reader.get_or_build(circuit, stream8)
        assert reader.disk_hits == 0 and reader.misses == 1
        got = ArrivalReplay(circuit, plane).stream()
        assert_streams_identical(got, circuit.run(stream8))

    def test_opaque_hook_bypasses_cache(self, cb8, stream8):
        def hook(values, start_index):
            return values

        circuit = CompiledCircuit(
            cb8, fault_hooks={cb8.cells[0].output: hook}
        )
        assert plane_cache_key(circuit, stream8, None, False) is None
        cache = ValuePlaneCache()
        cache.get_or_build(circuit, stream8)
        cache.get_or_build(circuit, stream8)
        assert cache.bypasses == 2 and cache.hits == 0

    def test_fault_hooks_are_cacheable(self, cb8, stream8):
        faults = [StuckAtFault(net=cb8.cells[10].output, value=0)]
        circuit = compile_with_faults(cb8, faults)
        pristine = CompiledCircuit(cb8)
        faulty_key = plane_cache_key(circuit, stream8, None, False)
        assert faulty_key is not None
        assert faulty_key != plane_cache_key(pristine, stream8, None, False)


class TestAgingIntegration:
    @pytest.fixture(scope="class")
    def factory(self, cb8):
        return AgedCircuitFactory.characterize(cb8, num_patterns=400)

    def test_factory_stream_results_match_full_runs(
        self, factory, stream8
    ):
        years = [0.0, 3.0, 7.0]
        batched = factory.stream_results(years, stream8)
        for year, got in zip(years, batched):
            want = factory.circuit(year).run(stream8)
            assert_streams_identical(got, want)

    def test_lifetime_delay_scales_shape(self, factory, cb8):
        scales = factory.lifetime_delay_scales([0.0, 7.0])
        assert scales.shape == (2, len(cb8.cells))
        assert np.array_equal(scales[0], np.ones(len(cb8.cells)))

    def test_critical_delays_match_static_timing(self, factory, cb8):
        scales = factory.lifetime_delay_scales([0.0, 2.0, 7.0])
        batched = critical_delays(cb8, delay_scales=scales)
        for j in range(scales.shape[0]):
            sta = StaticTiming(cb8, delay_scale=scales[j])
            assert batched[j] == sta.critical_delay
