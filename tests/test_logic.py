"""Cell logic semantics: scalar vs vector agreement, packing, toggles."""

import itertools

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nets.cells import (
    OP_AND2,
    OP_AND3,
    OP_BUF,
    OP_INV,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_OR2,
    OP_OR3,
    OP_TRIBUF,
    OP_XNOR2,
    OP_XOR2,
    STANDARD_LIBRARY,
)
from repro.timing import logic

ALL_OPCODES = {
    cell.name: (cell.opcode, cell.num_inputs) for cell in STANDARD_LIBRARY
}

REFERENCE = {
    OP_BUF: lambda a: a,
    OP_INV: lambda a: 1 - a,
    OP_AND2: lambda a, b: a & b,
    OP_OR2: lambda a, b: a | b,
    OP_NAND2: lambda a, b: 1 - (a & b),
    OP_NOR2: lambda a, b: 1 - (a | b),
    OP_XOR2: lambda a, b: a ^ b,
    OP_XNOR2: lambda a, b: 1 - (a ^ b),
    OP_MUX2: lambda d0, d1, s: d1 if s else d0,
    OP_TRIBUF: lambda d, e: d,  # transparent by design
    OP_AND3: lambda a, b, c: a & b & c,
    OP_OR3: lambda a, b, c: a | b | c,
}


class TestEvalScalar:
    @pytest.mark.parametrize("name", sorted(ALL_OPCODES))
    def test_matches_reference_exhaustively(self, name):
        opcode, arity = ALL_OPCODES[name]
        for bits in itertools.product((0, 1), repeat=arity):
            assert logic.eval_scalar(opcode, bits) == REFERENCE[opcode](*bits)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(SimulationError):
            logic.eval_scalar(999, [0])

    def test_tribuf_stateful_helper(self):
        assert logic.eval_tribuf_scalar(1, 1, 0) == 1
        assert logic.eval_tribuf_scalar(1, 0, 0) == 0  # holds


class TestEvalVector:
    @pytest.mark.parametrize("name", sorted(ALL_OPCODES))
    def test_matches_scalar_on_all_inputs(self, name):
        opcode, arity = ALL_OPCODES[name]
        columns = np.array(
            list(itertools.product((0, 1), repeat=arity)), dtype=np.uint8
        ).T
        out = logic.eval_vector(opcode, list(columns))
        expected = [
            logic.eval_scalar(opcode, columns[:, k])
            for k in range(columns.shape[1])
        ]
        assert out.tolist() == expected

    def test_unknown_opcode_rejected(self):
        with pytest.raises(SimulationError):
            logic.eval_vector(999, [np.zeros(1, dtype=np.uint8)])


class TestPackUnpack:
    def test_roundtrip(self):
        words = np.array([0, 1, 5, 1023, 2**32 - 1], dtype=np.uint64)
        bits = logic.unpack_bits(words, 33)
        assert np.array_equal(logic.pack_bits(bits), words)

    def test_unpack_rejects_overflow(self):
        with pytest.raises(SimulationError):
            logic.unpack_bits(np.array([8], dtype=np.uint64), 3)

    def test_pack_rejects_wide_matrix(self):
        with pytest.raises(SimulationError):
            logic.pack_bits(np.zeros((65, 2), dtype=np.uint8))

    def test_unpack_rejects_bad_width(self):
        with pytest.raises(SimulationError):
            logic.unpack_bits(np.array([0], dtype=np.uint64), 0)


class TestTribufMaskedToggles:
    def test_enabled_everywhere_counts_plain_changes(self):
        values = np.array([0, 1, 1, 0], dtype=np.uint8)
        enables = np.ones(4, dtype=np.uint8)
        toggles, final = logic.tribuf_masked_toggles(values, enables)
        assert toggles.tolist() == [False, True, False, True]
        assert final == 0

    def test_disabled_steps_hold(self):
        values = np.array([0, 1, 0, 1], dtype=np.uint8)
        enables = np.array([1, 0, 0, 1], dtype=np.uint8)
        toggles, final = logic.tribuf_masked_toggles(values, enables)
        # Held at 0 through the disabled middle; re-enable sees 1.
        assert toggles.tolist() == [False, False, False, True]
        assert final == 1

    def test_carry_value_used_across_chunks(self):
        values = np.array([1, 1], dtype=np.uint8)
        enables = np.array([1, 1], dtype=np.uint8)
        toggles, _ = logic.tribuf_masked_toggles(values, enables, carry_value=0)
        assert toggles.tolist() == [True, False]

    def test_never_enabled_is_quiet(self):
        values = np.array([0, 1, 0], dtype=np.uint8)
        enables = np.zeros(3, dtype=np.uint8)
        toggles, _ = logic.tribuf_masked_toggles(values, enables)
        assert not toggles.any()

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            logic.tribuf_masked_toggles(
                np.zeros(3, dtype=np.uint8), np.zeros(2, dtype=np.uint8)
            )


class TestTransitionVector:
    def _trans(self, opcode, values, transitions, changed=None, damping=1.0):
        values = [np.asarray(v, dtype=np.uint8) for v in values]
        transitions = [np.asarray(t, dtype=float) for t in transitions]
        if changed is None:
            changed = np.zeros(values[0].shape, dtype=bool)
        return logic.transition_vector(
            opcode, values, transitions, changed, damping
        )

    def test_xor_sums_input_activity(self):
        out = self._trans(OP_XOR2, [[1], [0]], [[2.0], [3.0]])
        assert out[0] == pytest.approx(5.0)

    def test_and_blocks_on_controlling_zero(self):
        # b = 0 kills transitions arriving on a.
        out = self._trans(OP_AND2, [[1], [0]], [[5.0], [0.0]])
        assert out[0] == pytest.approx(0.0)

    def test_or_blocks_on_controlling_one(self):
        out = self._trans(OP_OR2, [[1], [0]], [[0.0], [5.0]])
        assert out[0] == pytest.approx(0.0)

    def test_mux_passes_only_selected_data(self):
        # select = 0 with equal data: d1 activity is invisible.
        out = self._trans(
            OP_MUX2, [[1], [1], [0]], [[2.0], [9.0], [0.0]]
        )
        assert out[0] == pytest.approx(2.0)

    def test_mux_select_activity_needs_differing_data(self):
        differing = self._trans(
            OP_MUX2, [[0], [1], [0]], [[0.0], [0.0], [4.0]]
        )
        equal = self._trans(
            OP_MUX2, [[1], [1], [0]], [[0.0], [0.0], [4.0]]
        )
        assert differing[0] > equal[0]

    def test_tribuf_disabled_is_quiet(self):
        out = self._trans(OP_TRIBUF, [[1], [0]], [[7.0], [0.0]])
        assert out[0] == pytest.approx(0.0)

    def test_floored_at_functional_change(self):
        out = self._trans(
            OP_AND2,
            [[1], [0]],
            [[5.0], [0.0]],
            changed=np.array([True]),
        )
        assert out[0] >= 1.0

    def test_damping_scales_glitches(self):
        undamped = self._trans(OP_XOR2, [[1], [0]], [[2.0], [2.0]])
        damped = self._trans(
            OP_XOR2, [[1], [0]], [[2.0], [2.0]], damping=0.5
        )
        assert damped[0] == pytest.approx(0.5 * undamped[0])

    def test_unknown_opcode_rejected(self):
        with pytest.raises(SimulationError):
            self._trans(999, [[0]], [[0.0]])
