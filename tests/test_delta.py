"""Cone-delta incremental evaluation equivalence suite.

Mirrors ``test_kernel.py``'s role for the delta machinery: every
observable on the byte-identity surface (``outputs``, ``delays``,
``bit_arrivals``) produced by :func:`repro.timing.delta.replay_delta`
must be bit-identical to a from-scratch
:func:`repro.timing.delta.evaluate_full` of the mutated child -- across
multiplier architectures, delay modes, mutation families (retype,
constant tie, rewire, delay nudge) and their combinations.  The suite
also pins the failure modes: misaligned pairs, hooked circuits, bad
scale shapes and unpatchable rewires must raise typed
:class:`~repro.errors.DeltaError`, never silently fall back.
"""

import dataclasses

import numpy as np
import pytest

from repro.arith import (
    array_multiplier,
    column_bypass_multiplier,
    row_bypass_multiplier,
)
from repro.distrib.jobs import clear_state_cache, run_job
from repro.errors import ConfigError, DeltaError, NetlistError
from repro.experiments import ArtifactStore
from repro.experiments.sweep import (
    RETYPE_SWAPS,
    SweepSpec,
    VariantSweep,
    enumerate_variants,
    render_payload,
)
from repro.faults.injector import (
    compile_with_faults,
    fault_delay_scale,
    fault_delay_scales,
)
from repro.faults.models import DelayFault, StuckAtFault
from repro.nets import Mutation, apply_mutations, retype, tie_high, tie_low
from repro.nets.netlist import CONST0
from repro.timing import CompiledCircuit, jit
from repro.timing.delta import (
    DeltaBase,
    build_delta_plane,
    diff_netlists,
    evaluate_full,
    patch_compiled,
    replay_delta,
)
from repro.timing.value_cache import plane_cache_key
from repro.workloads import uniform_operands

WIDTH = 6
NUM_PATTERNS = 192
CORNERS = 2

GENERATORS = {
    "am": array_multiplier,
    "cb": column_bypass_multiplier,
    "rb": row_bypass_multiplier,
}


def scales_for(netlist, k=CORNERS, seed=5):
    rng = np.random.default_rng(seed)
    return 1.0 + rng.uniform(0.0, 0.4, (k, len(netlist.cells)))


def retypable_cells(netlist):
    return [
        cell.index
        for cell in netlist.cells
        if cell.group is None and cell.cell_type.name in RETYPE_SWAPS
    ]


def swap_of(netlist, index):
    return Mutation(index, RETYPE_SWAPS[netlist.cells[index].cell_type.name])


def assert_result_same(got, want, bit_arrivals=False):
    assert got.num_patterns == want.num_patterns
    assert sorted(got.outputs) == sorted(want.outputs)
    for name, values in want.outputs.items():
        assert np.array_equal(got.outputs[name], values), name
    assert np.array_equal(got.delays, want.delays)
    if bit_arrivals:
        for name, matrix in want.bit_arrivals.items():
            assert np.array_equal(got.bit_arrivals[name], matrix), name


@pytest.fixture(scope="module", params=sorted(GENERATORS))
def design(request):
    netlist = GENERATORS[request.param](WIDTH)
    md, mr = uniform_operands(WIDTH, NUM_PATTERNS, seed=7)
    return {
        "netlist": netlist,
        "stimulus": {"md": md, "mr": mr},
        "scales": scales_for(netlist),
    }


@pytest.fixture(scope="module", params=["inertial", "floating"])
def base(request, design):
    circuit = CompiledCircuit(design["netlist"], mode=request.param)
    return DeltaBase(circuit, design["stimulus"], design["scales"])


class TestDiff:
    def test_identical_pair_is_empty(self, design):
        netlist = design["netlist"]
        delta = diff_netlists(netlist, apply_mutations(netlist, []))
        assert delta.is_empty
        assert delta.cone_fraction == 0.0
        assert delta.changed_cells == ()
        assert delta.cone_cells == ()
        assert delta.parent_fingerprint == delta.child_fingerprint

    def test_retype_cone_contains_consumers(self, design):
        netlist = design["netlist"]
        index = retypable_cells(netlist)[0]
        child = apply_mutations(netlist, [swap_of(netlist, index)])
        delta = diff_netlists(netlist, child)
        assert delta.changed_cells == (index,)
        assert index in delta.cone_cells
        assert netlist.cells[index].output in delta.affected_nets
        assert 0.0 < delta.cone_fraction <= 1.0
        # The cone is forward-closed: every consumer of an affected net
        # is itself in the cone.
        cone = set(delta.cone_cells)
        for cell in child.cells:
            if any(net in delta.affected_nets for net in cell.inputs):
                assert cell.index in cone

    def test_fingerprint_separates_children(self, design):
        netlist = design["netlist"]
        sites = retypable_cells(netlist)[:2]
        deltas = [
            diff_netlists(
                netlist, apply_mutations(netlist, [swap_of(netlist, s)])
            )
            for s in sites
        ]
        assert deltas[0].fingerprint() != deltas[1].fingerprint()

    def test_misaligned_pair_rejected(self):
        with pytest.raises(DeltaError):
            diff_netlists(array_multiplier(4), array_multiplier(5))

    def test_mutation_validation(self, design):
        netlist = design["netlist"]
        with pytest.raises(NetlistError):
            apply_mutations(netlist, [retype(10 ** 6, "OR2")])
        index = retypable_cells(netlist)[0]
        with pytest.raises(NetlistError):
            apply_mutations(
                netlist, [swap_of(netlist, index), tie_low(index)]
            )
        with pytest.raises(NetlistError):  # arity mismatch
            apply_mutations(netlist, [Mutation(index, "INV")])

    def test_site_ids_distinguish_families(self):
        assert retype(3, "OR2").site_id() == "retype:c3:OR2"
        assert tie_low(3).site_id() != tie_high(3).site_id()
        assert tie_low(3).inputs == (CONST0,)


class TestPatchCompiled:
    def test_patched_run_matches_scratch_compile(self, design):
        netlist = design["netlist"]
        parent = CompiledCircuit(netlist)
        index = retypable_cells(netlist)[1]
        child = apply_mutations(netlist, [swap_of(netlist, index)])
        patched = patch_compiled(parent, child)
        want = CompiledCircuit(child).run(
            design["stimulus"], collect_bit_arrivals=True
        )
        got = patched.run(design["stimulus"], collect_bit_arrivals=True)
        for name, values in want.outputs.items():
            assert np.array_equal(got.outputs[name], values)
        assert np.array_equal(got.delays, want.delays)
        for name, matrix in want.bit_arrivals.items():
            assert np.array_equal(got.bit_arrivals[name], matrix)
        # Re-bucketing one level permutes the switched-cap accumulation
        # order: identical to float association, like across-kernel.
        assert np.allclose(
            got.switched_caps, want.switched_caps, rtol=1e-12, atol=1e-9
        )

    def test_lineage_separates_cache_keys(self, design):
        netlist = design["netlist"]
        parent = CompiledCircuit(netlist)
        index = retypable_cells(netlist)[0]
        child = apply_mutations(netlist, [swap_of(netlist, index)])
        patched = patch_compiled(parent, child)
        fresh = CompiledCircuit(child)
        assert len(patched.delta_lineage) == 1
        stim = design["stimulus"]
        assert plane_cache_key(patched, stim) != plane_cache_key(fresh, stim)
        assert plane_cache_key(parent, stim) != plane_cache_key(patched, stim)
        # A second structural step extends the lineage chain.
        other = retypable_cells(netlist)[1]
        grandchild = apply_mutations(
            child, [swap_of(child, other)]
        )
        twice = patch_compiled(patched, grandchild)
        assert len(twice.delta_lineage) == 2
        assert twice.delta_lineage[0] == patched.delta_lineage[0]

    def test_hooked_parent_rejected(self, design):
        netlist = design["netlist"]
        hooked = compile_with_faults(
            netlist, [StuckAtFault(net=netlist.cells[0].output, value=0)]
        )
        child = apply_mutations(
            netlist, [swap_of(netlist, retypable_cells(netlist)[0])]
        )
        with pytest.raises(DeltaError):
            patch_compiled(hooked, child)

    def test_foreign_delta_rejected(self, design):
        netlist = design["netlist"]
        parent = CompiledCircuit(netlist)
        sites = retypable_cells(netlist)[:2]
        children = [
            apply_mutations(netlist, [swap_of(netlist, s)]) for s in sites
        ]
        delta = diff_netlists(netlist, children[0])
        with pytest.raises(DeltaError):
            patch_compiled(parent, children[1], delta)

    def test_same_level_rewire_unpatchable(self, design):
        # Rewiring a cell to consume a net produced at its own kept
        # level breaks levelization (no cycle, so the child still
        # validates); the patcher must refuse rather than compute
        # garbage.
        netlist = design["netlist"]
        parent = CompiledCircuit(netlist)
        plan = parent.soa_value_plan()
        cells = parent._cells
        victim = other = None
        for buckets in plan.levels:
            positions = [
                int(p) for bucket in buckets for p in bucket.positions
            ]
            if len(positions) >= 2:
                victim, other = cells[positions[0]], cells[positions[1]]
                break
        assert victim is not None
        mutation = Mutation(
            victim.index,
            netlist.cells[victim.index].cell_type.name,
            (other.output,) + tuple(victim.inputs[1:]),
        )
        child = apply_mutations(netlist, [mutation])
        with pytest.raises(DeltaError):
            patch_compiled(parent, child)

    def test_numba_parent_demotes_to_soa(self, design):
        netlist = design["netlist"]
        parent = CompiledCircuit(netlist, kernel="numba")
        child = apply_mutations(
            netlist, [swap_of(netlist, retypable_cells(netlist)[0])]
        )
        assert patch_compiled(parent, child).kernel == "soa"


class TestReplayDelta:
    def children_for(self, netlist):
        swaps = retypable_cells(netlist)
        ties = [c.index for c in netlist.cells if c.group is None]
        return {
            "retype": [swap_of(netlist, swaps[0])],
            "retype-deep": [swap_of(netlist, swaps[len(swaps) // 2])],
            "tie-low": [tie_low(ties[len(ties) // 3])],
            "tie-high": [tie_high(ties[-1])],
            "multi": [swap_of(netlist, swaps[0]),
                      swap_of(netlist, swaps[-1])],
        }

    def test_every_mutation_family_bit_identical(self, design, base):
        netlist = design["netlist"]
        stim = design["stimulus"]
        mode = base.circuit.mode
        for label, mutations in self.children_for(netlist).items():
            child = apply_mutations(netlist, mutations)
            got = replay_delta(base, child, collect_bit_arrivals=True)
            want = evaluate_full(
                child, stim, design["scales"],
                mode=mode, collect_bit_arrivals=True,
            )
            assert got.method == "delta", label
            assert got.value_cone_cells
            assert_result_same(got, want, bit_arrivals=True)

    def test_delay_only_variant_bit_identical(self, design, base):
        netlist = design["netlist"]
        perturbed = fault_delay_scales(
            netlist,
            [DelayFault(cell=len(netlist.cells) // 2, extra_ns=0.6)],
            design["scales"],
        )
        got = replay_delta(
            base, netlist, delay_scales=perturbed,
            collect_bit_arrivals=True,
        )
        want = evaluate_full(
            netlist, design["stimulus"], perturbed,
            mode=base.circuit.mode, collect_bit_arrivals=True,
        )
        assert got.method == "delta"
        assert got.value_cone_cells == ()  # structure untouched
        assert got.arrival_cone_cells
        assert_result_same(got, want, bit_arrivals=True)

    def test_mixed_structural_and_scale_change(self, design, base):
        netlist = design["netlist"]
        child = apply_mutations(
            netlist, [swap_of(netlist, retypable_cells(netlist)[2])]
        )
        perturbed = fault_delay_scales(
            netlist, [DelayFault(cell=3, extra_ns=0.2)], design["scales"]
        )
        got = replay_delta(
            base, child, delay_scales=perturbed,
            collect_bit_arrivals=True,
        )
        want = evaluate_full(
            child, design["stimulus"], perturbed,
            mode=base.circuit.mode, collect_bit_arrivals=True,
        )
        # The arrival cone covers both seeds, the value cone only the
        # structural one.
        assert set(got.value_cone_cells) < set(got.arrival_cone_cells)
        assert_result_same(got, want, bit_arrivals=True)

    def test_empty_delta_returns_base(self, design, base):
        got = replay_delta(
            base, design["netlist"], collect_bit_arrivals=True
        )
        assert got.method == "base"
        assert got.delta is not None and got.delta.is_empty
        want = base.result(collect_bit_arrivals=True)
        assert_result_same(got, want, bit_arrivals=True)

    def test_base_result_matches_full(self, design, base):
        want = evaluate_full(
            design["netlist"], design["stimulus"], design["scales"],
            mode=base.circuit.mode, collect_bit_arrivals=True,
        )
        assert_result_same(
            base.result(collect_bit_arrivals=True), want,
            bit_arrivals=True,
        )
        assert base.nbytes > 0

    def test_cone_fraction_fallback_same_bytes(self, design, base):
        netlist = design["netlist"]
        child = apply_mutations(
            netlist, [swap_of(netlist, retypable_cells(netlist)[0])]
        )
        fast = replay_delta(base, child, collect_bit_arrivals=True)
        slow = replay_delta(
            base, child, collect_bit_arrivals=True,
            max_cone_fraction=0.0,
        )
        assert fast.method == "delta" and slow.method == "full"
        assert_result_same(slow, fast, bit_arrivals=True)

    def test_result_summaries(self, base):
        result = base.result()
        assert result.num_corners == CORNERS
        assert result.max_delays().shape == (CORNERS,)
        assert np.all(result.mean_delays() <= result.max_delays())


class TestDeltaErrors:
    def test_scale_shape_rejected(self, design):
        circuit = CompiledCircuit(design["netlist"])
        with pytest.raises(DeltaError):
            DeltaBase(circuit, design["stimulus"], np.ones((2, 3)))
        with pytest.raises(DeltaError):
            DeltaBase(
                circuit,
                design["stimulus"],
                np.zeros((1, len(design["netlist"].cells))),
            )

    def test_replay_scale_shape_must_match_base(self, design, base):
        with pytest.raises(DeltaError):
            replay_delta(
                base,
                design["netlist"],
                delay_scales=np.ones(
                    (CORNERS + 1, len(design["netlist"].cells))
                ),
            )

    def test_hooked_circuit_cannot_build_base(self, design):
        netlist = design["netlist"]
        hooked = compile_with_faults(
            netlist, [StuckAtFault(net=netlist.cells[0].output, value=1)]
        )
        with pytest.raises(DeltaError):
            build_delta_plane(hooked, design["stimulus"])

    def test_active_jit_cannot_capture_values(self, design):
        previous = jit.force_python(not jit.HAVE_NUMBA)
        try:
            assert jit.jit_enabled()
            circuit = CompiledCircuit(design["netlist"], kernel="numba")
            with pytest.raises(DeltaError):
                build_delta_plane(circuit, design["stimulus"])
        finally:
            jit.force_python(previous)

    def test_ragged_stimulus_rejected(self, design):
        circuit = CompiledCircuit(design["netlist"])
        with pytest.raises(DeltaError):
            build_delta_plane(
                circuit, {"md": [1, 2, 3], "mr": [1, 2]}
            )


class TestFaultDelayScales:
    def test_matrix_matches_vector_form_per_row(self, design):
        netlist = design["netlist"]
        faults = [
            DelayFault(cell=2, extra_ns=0.3),
            DelayFault(cell=7, extra_ns=0.1),
        ]
        base = scales_for(netlist, k=3, seed=9)
        got = fault_delay_scales(netlist, faults, base)
        for row in range(3):
            want = fault_delay_scale(
                netlist, faults, base_scale=base[row]
            )
            assert np.array_equal(got[row], want)

    def test_no_faults_returns_base_unchanged(self, design):
        base = scales_for(design["netlist"])
        assert fault_delay_scales(design["netlist"], [], base) is base


SWEEP_SPEC = SweepSpec(
    width=WIDTH,
    kind="am",
    years=(0.0, 6.0),
    num_patterns=128,
    seed=3,
    characterize_patterns=150,
    num_variants=9,
    variant_seed=4,
)


class TestVariantSweep:
    def test_enumeration_deterministic_and_distinct(self, design):
        netlist = design["netlist"]
        spec = dataclasses.replace(SWEEP_SPEC, num_variants=12)
        first = enumerate_variants(netlist, spec)
        second = enumerate_variants(netlist, spec)
        assert first == second
        sites = [v.site for v in first]
        assert len(set(sites)) == len(sites)
        families = {site.split(":", 1)[0] for site in sites}
        assert families == {"retype", "rewire", "delay"}

    def test_enumeration_capacity_bounded(self, design):
        spec = dataclasses.replace(SWEEP_SPEC, num_variants=10 ** 6)
        with pytest.raises(ConfigError):
            enumerate_variants(design["netlist"], spec)

    def test_spec_round_trip_rejects_unknown_fields(self):
        assert SweepSpec.from_dict(SWEEP_SPEC.to_dict()) == SWEEP_SPEC
        with pytest.raises(ConfigError):
            SweepSpec.from_dict({"widht": 8})

    def test_delta_and_full_engines_byte_identical(self):
        sweep = VariantSweep(SWEEP_SPEC)
        fast, fast_stats = sweep.run(engine="delta")
        slow, slow_stats = sweep.run(engine="full")
        assert render_payload(fast) == render_payload(slow)
        assert set(fast_stats["methods"]) <= {"delta", "base", "full"}
        assert slow_stats["methods"] == {"full": 9}

    def test_store_caches_records(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        first, stats = VariantSweep(SWEEP_SPEC, store=store).run()
        assert stats["store_hits"] == 0
        again, stats = VariantSweep(SWEEP_SPEC, store=store).run(
            engine="full"
        )
        assert stats["store_hits"] == 9
        assert stats["methods"] == {}
        assert render_payload(again) == render_payload(first)

    def test_store_delta_kind_validates(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = {"site": "retype:c1:OR2"}
        store.save("delta", key, {"site": "retype:c1:OR2"})
        assert store.load("delta", key) == {"site": "retype:c1:OR2"}
        with pytest.raises(ConfigError):
            store.save("delta", key, ["not", "a", "dict"])

    def test_variant_shard_job_matches_inline(self):
        clear_state_cache()
        try:
            sweep = VariantSweep(SWEEP_SPEC)
            response = run_job({
                "job": "variant_shard",
                "sweep": SWEEP_SPEC.to_dict(),
                "engine": "delta",
                "variants": [0, 4],
            })
            records = dict(
                (index, record)
                for index, record in response["records"]
            )
            for index in (0, 4):
                want, _ = sweep.evaluate(index, engine="full")
                assert records[index] == want
        finally:
            clear_state_cache()

    def test_variant_shard_rejects_bad_requests(self):
        with pytest.raises(ConfigError):
            run_job({"job": "variant_shard", "sweep": [], "variants": []})
        with pytest.raises(ConfigError):
            run_job({
                "job": "variant_shard",
                "sweep": SWEEP_SPEC.to_dict(),
                "variants": [99],
            })
