"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arith import (
    array_multiplier,
    column_bypass_multiplier,
    count_zeros,
    row_bypass_multiplier,
)
from repro.arith.adders import carry_save_add
from repro.core.aging_indicator import AgingIndicator
from repro.core.judging import JudgingBlock
from repro.config import SimulationConfig
from repro.nets.netlist import CONST0, CONST1, Netlist
from repro.timing import CompiledCircuit
from repro.timing.logic import pack_bits, unpack_bits

# Netlist construction dominates runtime: build one instance per width
# and reuse across hypothesis examples.
_CIRCUITS = {}


def _circuit(kind, width):
    key = (kind, width)
    if key not in _CIRCUITS:
        generator = {
            "am": array_multiplier,
            "cb": column_bypass_multiplier,
            "rb": row_bypass_multiplier,
        }[kind]
        _CIRCUITS[key] = CompiledCircuit(generator(width))
    return _CIRCUITS[key]


@st.composite
def operand_streams(draw, max_width=7, max_len=12):
    width = draw(st.integers(2, max_width))
    length = draw(st.integers(1, max_len))
    high = (1 << width) - 1
    md = draw(
        st.lists(st.integers(0, high), min_size=length, max_size=length)
    )
    mr = draw(
        st.lists(st.integers(0, high), min_size=length, max_size=length)
    )
    return width, np.array(md, dtype=np.uint64), np.array(mr, dtype=np.uint64)


@settings(max_examples=60, deadline=None)
@given(operand_streams(), st.sampled_from(["am", "cb", "rb"]))
def test_multipliers_always_exact(stream, kind):
    """The bypass transformations never change the product."""
    width, md, mr = stream
    result = _circuit(kind, width).run({"md": md, "mr": mr})
    assert np.array_equal(result.outputs["p"], md * mr)


@settings(max_examples=60, deadline=None)
@given(operand_streams(max_width=6, max_len=8))
def test_bypassing_delay_never_negative_and_bounded(stream):
    width, md, mr = stream
    circuit = _circuit("cb", width)
    result = circuit.run({"md": md, "mr": mr})
    assert np.all(result.delays >= 0)
    from repro.timing import StaticTiming

    assert result.max_delay <= (
        StaticTiming(circuit.netlist, circuit.technology).critical_delay
        + 1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=20),
    st.integers(1, 32),
)
def test_count_zeros_matches_bin(values, width):
    mask = (1 << width) - 1
    masked = [v & mask for v in values]
    zeros = count_zeros(np.array(masked, dtype=np.uint64), width)
    expected = [width - bin(v).count("1") for v in masked]
    assert zeros.tolist() == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 2**50), min_size=1, max_size=10))
def test_pack_unpack_roundtrip(words):
    arr = np.array(words, dtype=np.uint64)
    assert np.array_equal(pack_bits(unpack_bits(arr, 51)), arr)


@settings(max_examples=100, deadline=None)
@given(st.tuples(*[st.sampled_from([None, 0, 1])] * 3), st.integers(0, 7))
def test_carry_save_add_arithmetic(consts, live_bits):
    """sum + 2*carry == x + y + z for any const/live input mix."""
    live_count = sum(1 for c in consts if c is None)
    nl = Netlist("p")
    nets = iter(nl.add_input_port("x", live_count) if live_count else [])
    operands = [
        next(nets) if c is None else (CONST1 if c else CONST0)
        for c in consts
    ]
    total, carry = carry_save_add(nl, *operands)
    word = live_bits & ((1 << live_count) - 1) if live_count else 0
    bits = iter((word >> k) & 1 for k in range(live_count))
    resolved = [c if c is not None else next(bits) for c in consts]
    expected = sum(resolved)

    # Evaluate through the engine when anything is live.
    if live_count:
        outs = []
        for net in (total, carry):
            outs.append(
                net if net > CONST1 else nl.buf(
                    CONST1 if net == CONST1 else CONST0
                )
            )
        nl.add_output_port("s", [outs[0]])
        nl.add_output_port("c", [outs[1]])
        result = CompiledCircuit(nl).run({"x": [word]})
        got = int(result.outputs["s"][0]) + 2 * int(result.outputs["c"][0])
    else:
        got = (1 if total == CONST1 else 0) + 2 * (
            1 if carry == CONST1 else 0
        )
    assert got == expected


@settings(max_examples=100, deadline=None)
@given(
    st.integers(2, 24),
    st.integers(0, 24),
    st.lists(st.integers(0, 2**24 - 1), min_size=1, max_size=30),
)
def test_judging_block_definition(width, skip, values):
    if skip > width:
        skip = width
    block = JudgingBlock(width, skip)
    mask = (1 << width) - 1
    operands = np.array([v & mask for v in values], dtype=np.uint64)
    flags = block.one_cycle(operands)
    for value, flag in zip(operands, flags):
        zeros = width - bin(int(value)).count("1")
        assert flag == (zeros >= skip)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.booleans(), min_size=1, max_size=400),
    st.integers(10, 50),
    st.integers(1, 10),
)
def test_aging_indicator_matches_reference_model(errors, window, threshold):
    """The incremental indicator equals a straightforward reference."""
    config = SimulationConfig(
        indicator_window=window, indicator_threshold=threshold
    )
    indicator = AgingIndicator(config)
    for error in errors:
        indicator.record(error)

    aged = False
    for start in range(0, len(errors) - window + 1, window):
        if sum(errors[start : start + window]) >= threshold:
            aged = True
            break
    assert indicator.aged == aged
