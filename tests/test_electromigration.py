"""Electromigration model (Section V extension)."""

import numpy as np
import pytest

from repro.aging import (
    ElectromigrationModel,
    cell_toggle_rates,
    combined_delay_scale,
)
from repro.errors import ConfigError, SimulationError
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def em():
    return ElectromigrationModel()


class TestResistanceGrowth:
    def test_zero_at_year_zero(self, em):
        growth = em.resistance_growth(np.array([0.5, 1.0]), 0.0)
        assert np.all(growth == 0.0)

    def test_idle_wire_never_degrades(self, em):
        growth = em.resistance_growth(np.array([0.0]), 10.0)
        assert growth[0] == 0.0

    def test_monotone_in_activity(self, em):
        rates = np.linspace(0, 1, 6)
        growth = em.resistance_growth(rates, 10.0)
        assert np.all(np.diff(growth) >= 0)

    def test_monotone_in_time(self, em):
        early = em.resistance_growth(np.array([1.0]), 2.0)
        late = em.resistance_growth(np.array([1.0]), 10.0)
        assert late[0] > early[0]

    def test_reference_magnitude(self, em):
        """A continuously switching wire gains em_coefficient at the
        reference point."""
        growth = em.resistance_growth(
            np.array([1.0]), em.reference_years
        )
        assert growth[0] == pytest.approx(
            em.em_coefficient * em.thermal_acceleration()
        )

    def test_hotter_is_worse(self):
        cool = ElectromigrationModel(
            ElectromigrationModel().technology.replace(temperature=350.0)
        )
        hot = ElectromigrationModel()
        assert (
            hot.thermal_acceleration() > cool.thermal_acceleration()
        )

    def test_negative_years_rejected(self, em):
        with pytest.raises(ConfigError):
            em.resistance_growth(np.array([1.0]), -1.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ElectromigrationModel(em_coefficient=-0.1)
        with pytest.raises(ConfigError):
            ElectromigrationModel(wire_delay_fraction=1.5)


class TestDelayScale:
    def test_scale_from_activity(self, em, cb4):
        circuit = CompiledCircuit(cb4)
        md, mr = uniform_operands(4, 400, seed=71)
        result = circuit.run(
            {"md": md, "mr": mr}, collect_net_stats=True
        )
        rates = cell_toggle_rates(cb4, result.toggle_counts, 400)
        assert rates.shape == (len(cb4.cells),)
        assert np.all(rates >= 0)
        scale = em.delay_scale(cb4, rates, 7.0)
        assert np.all(scale >= 1.0)
        # Busier cells age more.
        busiest = int(np.argmax(rates))
        laziest = int(np.argmin(rates))
        assert scale[busiest] >= scale[laziest]

    def test_shape_mismatch_rejected(self, em, cb4):
        with pytest.raises(SimulationError):
            em.delay_scale(cb4, np.ones(3), 1.0)

    def test_toggle_rates_require_stats(self, cb4):
        with pytest.raises(SimulationError):
            cell_toggle_rates(cb4, None, 100)

    def test_combined_composition(self):
        bti = np.array([1.1, 1.2])
        em_scale = np.array([1.05, 1.0])
        combined = combined_delay_scale(bti, em_scale)
        assert combined == pytest.approx([1.155, 1.2])

    def test_combined_shape_check(self):
        with pytest.raises(SimulationError):
            combined_delay_scale(np.ones(2), np.ones(3))
