"""Application-shaped (DSP) workload generators."""

import numpy as np
import pytest

from repro.arith import count_zeros, golden_products
from repro.errors import WorkloadError
from repro.workloads import (
    dct_stream,
    fir_filter_stream,
    image_gradient_stream,
    uniform_operands,
)


class TestFirStream:
    def test_shapes_and_range(self):
        md, mr = fir_filter_stream(16, 500, seed=1)
        assert md.shape == mr.shape == (500,)
        assert md.max() < 1 << 16

    def test_coefficients_cycle(self):
        md, _ = fir_filter_stream(16, 64, num_taps=16, seed=1)
        assert np.array_equal(md[:16], md[16:32])

    def test_deterministic(self):
        first = fir_filter_stream(16, 100, seed=4)
        second = fir_filter_stream(16, 100, seed=4)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_taps_are_zero_rich(self):
        """Windowed-sinc taps decay: the coefficient stream carries more
        zeros than uniform noise -- the bypass-friendly property."""
        md, _ = fir_filter_stream(16, 2000, seed=2)
        uniform_md, _ = uniform_operands(16, 2000, seed=2)
        assert (
            count_zeros(md, 16).mean()
            > count_zeros(uniform_md, 16).mean()
        )

    def test_bad_taps_rejected(self):
        with pytest.raises(WorkloadError):
            fir_filter_stream(16, 10, num_taps=0)


class TestDctStream:
    def test_shapes(self):
        md, mr = dct_stream(12, 300, seed=3)
        assert md.shape == mr.shape == (300,)
        assert md.max() < 1 << 12

    def test_coefficients_repeat_with_period_64(self):
        md, _ = dct_stream(12, 128, seed=3)
        assert np.array_equal(md[:64], md[64:128])


class TestImageStream:
    def test_neighbour_correlation(self):
        """Adjacent pixels are similar: small |md - mr| on average."""
        md, mr = image_gradient_stream(16, 3000, seed=4)
        umd, umr = uniform_operands(16, 3000, seed=4)
        gap = np.abs(md.astype(np.int64) - mr.astype(np.int64)).mean()
        uniform_gap = np.abs(
            umd.astype(np.int64) - umr.astype(np.int64)
        ).mean()
        assert gap < uniform_gap / 2

    def test_values_fit_width(self):
        md, mr = image_gradient_stream(8, 500)
        assert md.max() < 256 and mr.max() < 256


class TestEndToEnd:
    def test_streams_multiply_exactly(self, cb16_circuit):
        for stream in (
            fir_filter_stream(16, 300, seed=5),
            dct_stream(16, 300, seed=5),
            image_gradient_stream(16, 300, seed=5),
        ):
            md, mr = stream
            result = cb16_circuit.run({"md": md, "mr": mr})
            assert np.array_equal(
                result.outputs["p"], golden_products(md, mr, 16)
            )

    def test_width_bounds(self):
        with pytest.raises(WorkloadError):
            fir_filter_stream(0, 10)
        with pytest.raises(WorkloadError):
            dct_stream(16, 0)
