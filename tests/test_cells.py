"""Cell library contents and invariants."""

import pytest

from repro.errors import ConfigError, UnknownCellError
from repro.nets.cells import (
    CellLibrary,
    CellType,
    DFF_TRANSISTORS,
    OP_INV,
    OP_MUX2,
    RAZOR_FF_TRANSISTORS,
    STANDARD_LIBRARY,
)


class TestStandardLibrary:
    EXPECTED = {
        "BUF", "INV", "AND2", "OR2", "NAND2", "NOR2",
        "XOR2", "XNOR2", "MUX2", "TRIBUF", "AND3", "OR3",
    }

    def test_contains_expected_cells(self):
        assert set(STANDARD_LIBRARY.names()) == self.EXPECTED

    def test_opcodes_unique(self):
        opcodes = [cell.opcode for cell in STANDARD_LIBRARY]
        assert len(set(opcodes)) == len(opcodes)

    def test_inverter_is_the_fastest(self):
        inv = STANDARD_LIBRARY.get("INV")
        for cell in STANDARD_LIBRARY:
            assert cell.delay_units >= inv.delay_units

    def test_nand_faster_than_and(self):
        # Logical effort: the non-inverting gate pays an extra stage.
        assert (
            STANDARD_LIBRARY.get("NAND2").delay_units
            < STANDARD_LIBRARY.get("AND2").delay_units
        )

    def test_xor_is_a_slow_complex_gate(self):
        xor = STANDARD_LIBRARY.get("XOR2")
        assert xor.delay_units > STANDARD_LIBRARY.get("NAND2").delay_units
        assert xor.transistors == 10

    def test_pin_counts(self):
        assert STANDARD_LIBRARY.get("MUX2").num_inputs == 3
        assert STANDARD_LIBRARY.get("TRIBUF").num_inputs == 2
        assert STANDARD_LIBRARY.get("AND3").num_inputs == 3
        assert STANDARD_LIBRARY.get("INV").num_inputs == 1

    def test_unknown_cell_raises(self):
        with pytest.raises(UnknownCellError):
            STANDARD_LIBRARY.get("XOR5")

    def test_contains_protocol(self):
        assert "XOR2" in STANDARD_LIBRARY
        assert "FOO" not in STANDARD_LIBRARY

    def test_sequential_weights(self):
        assert RAZOR_FF_TRANSISTORS > DFF_TRANSISTORS
        assert DFF_TRANSISTORS == 24


class TestCellType:
    def test_validation_rejects_bad_delay(self):
        with pytest.raises(ConfigError):
            CellType("BAD", OP_INV, 1, 0.0, 2, 1.0)

    def test_validation_rejects_zero_inputs(self):
        with pytest.raises(ConfigError):
            CellType("BAD", OP_INV, 0, 1.0, 2, 1.0)

    def test_validation_rejects_bad_pmos_fraction(self):
        with pytest.raises(ConfigError):
            CellType("BAD", OP_INV, 1, 1.0, 2, 1.0, pmos_fraction=1.5)

    def test_frozen(self):
        cell = STANDARD_LIBRARY.get("INV")
        with pytest.raises(Exception):
            cell.delay_units = 5.0


class TestCellLibrary:
    def test_duplicate_registration_rejected(self):
        lib = CellLibrary("test")
        lib.add(CellType("INV", OP_INV, 1, 1.0, 2, 1.0))
        with pytest.raises(ConfigError):
            lib.add(CellType("INV", OP_INV, 1, 2.0, 2, 1.0))

    def test_len_and_iter(self):
        lib = CellLibrary("test")
        lib.add(CellType("INV", OP_INV, 1, 1.0, 2, 1.0))
        lib.add(CellType("MUX2", OP_MUX2, 3, 1.9, 10, 0.9))
        assert len(lib) == 2
        assert {cell.name for cell in lib} == {"INV", "MUX2"}
