"""Operating-point selection (Section IV-A automation)."""

import numpy as np
import pytest

from repro.core import AgingAwareMultiplier, select_operating_point
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def arch():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )


@pytest.fixture(scope="module")
def selection(arch):
    return select_operating_point(arch, num_patterns=1200, seed=5)


class TestSelection:
    def test_best_is_feasible_minimum(self, selection):
        best = selection.best
        assert best is not None
        assert best.feasible
        feasible = selection.feasible_candidates()
        assert best.average_latency_ns == min(
            c.average_latency_ns for c in feasible
        )

    def test_candidates_cover_grid(self, selection):
        skips = {c.skip for c in selection.candidates}
        assert skips == {3, 4, 5}
        assert len(selection.candidates) == 3 * 11

    def test_feasibility_means_no_overruns(self, selection):
        for candidate in selection.feasible_candidates():
            assert candidate.report.deep_retry_ops == 0
            assert candidate.report.undetectable_count == 0

    def test_preferred_range_is_contiguous_suffix(self, selection):
        """Longer cycles are always feasible once one is: the feasible
        set per skip is an upper range of the grid."""
        for skip in (3, 4, 5):
            cycles = sorted(
                c.cycle_ns for c in selection.candidates if c.skip == skip
            )
            feasible = selection.preferred_range(skip)
            if feasible:
                cutoff = feasible[0]
                assert all(
                    c >= cutoff for c in feasible
                )
                assert set(feasible) == {
                    c for c in cycles if c >= cutoff
                }

    def test_error_rate_bound(self, arch):
        strict = select_operating_point(
            arch, num_patterns=800, seed=7, max_error_rate=0.0
        )
        for candidate in strict.feasible_candidates():
            assert candidate.report.error_count == 0

    def test_aged_selection_slower_but_feasible(self, arch):
        fresh = select_operating_point(arch, num_patterns=800, seed=9)
        aged = select_operating_point(
            arch, num_patterns=800, seed=9, years=7.0
        )
        assert aged.best is not None
        assert (
            aged.best.average_latency_ns
            >= fresh.best.average_latency_ns - 1e-9
        )

    def test_bad_pattern_count_rejected(self, arch):
        with pytest.raises(ConfigError):
            select_operating_point(arch, num_patterns=0)

    def test_operating_point_str(self, selection):
        text = str(selection.best)
        assert "skip=" in text and "feasible" in text

    def test_explicit_grid(self, arch):
        result = select_operating_point(
            arch,
            skips=(3,),
            cycles_ns=(0.5, 0.6),
            num_patterns=500,
        )
        assert {c.cycle_ns for c in result.candidates} == {0.5, 0.6}
