"""Adder building blocks and the Fig. 4 variable-latency RCA."""

import itertools

import numpy as np
import pytest

from repro.arith.adders import (
    carry_save_add,
    half_add,
    ripple_carry_adder,
    variable_latency_rca,
)
from repro.errors import NetlistError
from repro.nets.netlist import CONST0, CONST1, Netlist
from repro.timing import CompiledCircuit


def _evaluate_two_net(nl, nets, a_val, b_val):
    """Evaluate a 2-input scratch netlist on one operand pair."""
    nl2 = nl  # alias: caller built ports a,b (1 bit each)
    circuit = CompiledCircuit(nl2)
    result = circuit.run({"a": [a_val], "b": [b_val]})
    return {name: int(vals[0]) for name, vals in result.outputs.items()}


class TestCarrySaveAdd:
    @pytest.mark.parametrize(
        "consts",
        list(itertools.product([None, 0, 1], repeat=3)),
        ids=lambda c: "".join("v" if x is None else str(x) for x in c),
    )
    def test_all_constant_foldings(self, consts):
        """x+y+z is correct for every mix of live/const inputs."""
        live_count = sum(1 for c in consts if c is None)
        nl = Netlist("csa")
        live_nets = (
            nl.add_input_port("x", live_count) if live_count else []
        )
        live_iter = iter(live_nets)
        operands = [
            next(live_iter) if c is None else (CONST1 if c else CONST0)
            for c in consts
        ]
        total, carry = carry_save_add(nl, *operands)
        out_sum = total if total in (CONST0, CONST1) else total
        nl.add_output_port("s", [out_sum])
        nl.add_output_port("c", [carry])
        nl.validate()
        circuit = CompiledCircuit(nl)

        for bits in itertools.product((0, 1), repeat=max(live_count, 1)):
            if live_count:
                word = sum(bit << k for k, bit in enumerate(bits))
                stim = {"x": [word]}
            else:
                stim = {}
            if live_count:
                result = circuit.run(stim)
            else:
                # No live inputs: outputs are constants; check directly.
                expected = sum(c for c in consts)
                assert (total == CONST1) == bool(expected & 1)
                assert (carry == CONST1) == bool(expected >> 1)
                return
            values = iter(bits)
            resolved = [c if c is not None else next(values) for c in consts]
            expected = sum(resolved)
            got = int(result.outputs["s"][0]) + 2 * int(result.outputs["c"][0])
            assert got == expected, (consts, bits)

    def test_full_adder_uses_five_gates(self):
        nl = Netlist("fa")
        x = nl.add_input_port("x", 3)
        carry_save_add(nl, *x)
        stats = nl.stats()
        assert stats["cells"] == 5
        assert stats["XOR2"] == 2
        assert stats["AND2"] == 2
        assert stats["OR2"] == 1

    def test_half_adder_uses_two_gates(self):
        nl = Netlist("ha")
        x = nl.add_input_port("x", 2)
        half_add(nl, *x)
        assert nl.stats()["cells"] == 2


class TestKoggeStone:
    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_exhaustive(self, width):
        from repro.arith.adders import kogge_stone_sum

        nl = Netlist("ks")
        a = nl.add_input_port("a", width)
        b = nl.add_input_port("b", width)
        nl.add_output_port("s", kogge_stone_sum(nl, a, b))
        nl.validate()
        circuit = CompiledCircuit(nl)
        n = 1 << width
        va = np.repeat(np.arange(n, dtype=np.uint64), n)
        vb = np.tile(np.arange(n, dtype=np.uint64), n)
        result = circuit.run({"a": va, "b": vb})
        assert np.array_equal(result.outputs["s"], va + vb)

    def test_logarithmic_depth(self):
        from repro.arith.adders import kogge_stone_sum

        depths = {}
        for width in (8, 32):
            nl = Netlist("ks%d" % width)
            a = nl.add_input_port("a", width)
            b = nl.add_input_port("b", width)
            nl.add_output_port("s", kogge_stone_sum(nl, a, b))
            depths[width] = nl.max_logic_depth()
        # 4x the width costs two prefix levels (AND+OR each): +4 cells.
        assert depths[32] <= depths[8] + 4

    def test_unequal_operand_lengths(self):
        from repro.arith.adders import kogge_stone_sum

        nl = Netlist("ks")
        a = nl.add_input_port("a", 5)
        b = nl.add_input_port("b", 2)
        nl.add_output_port("s", kogge_stone_sum(nl, a, b))
        circuit = CompiledCircuit(nl)
        result = circuit.run({"a": [29, 31], "b": [3, 1]})
        assert result.outputs["s"].tolist() == [32, 32]

    def test_empty_rejected(self):
        from repro.arith.adders import kogge_stone_sum

        with pytest.raises(NetlistError):
            kogge_stone_sum(Netlist("ks"), [], [])


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_exhaustive(self, width):
        nl = ripple_carry_adder(width)
        circuit = CompiledCircuit(nl)
        n = 1 << width
        a = np.repeat(np.arange(n, dtype=np.uint64), n)
        b = np.tile(np.arange(n, dtype=np.uint64), n)
        result = circuit.run({"a": a, "b": b})
        assert np.array_equal(result.outputs["s"], a + b)

    def test_sum_port_has_carry_out(self):
        nl = ripple_carry_adder(8)
        assert nl.output_ports["s"].width == 9

    def test_width_zero_rejected(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)


class TestVariableLatencyRCA:
    def test_functionally_still_an_adder(self):
        nl = variable_latency_rca(8)
        circuit = CompiledCircuit(nl)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, 500, dtype=np.uint64)
        b = rng.integers(0, 256, 500, dtype=np.uint64)
        result = circuit.run({"a": a, "b": b})
        assert np.array_equal(result.outputs["s"], a + b)

    def test_hold_logic_function(self):
        """hold = (A4 xor B4) and (A5 xor B5), Fig. 4 (0-indexed 3, 4)."""
        nl = variable_latency_rca(8, hold_positions=(3, 4))
        circuit = CompiledCircuit(nl)
        rng = np.random.default_rng(4)
        a = rng.integers(0, 256, 500, dtype=np.uint64)
        b = rng.integers(0, 256, 500, dtype=np.uint64)
        result = circuit.run({"a": a, "b": b})
        expected = (((a >> 3) ^ (b >> 3)) & 1) & (((a >> 4) ^ (b >> 4)) & 1)
        assert np.array_equal(result.outputs["hold"], expected)

    def test_hold_probability_is_one_quarter(self):
        """Random inputs: P(hold) = 0.25, giving the paper's 6.25 vs 8
        average-latency example (a 28% improvement)."""
        nl = variable_latency_rca(8)
        circuit = CompiledCircuit(nl)
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, 4000, dtype=np.uint64)
        b = rng.integers(0, 256, 4000, dtype=np.uint64)
        result = circuit.run({"a": a, "b": b})
        p_hold = result.outputs["hold"].mean()
        assert p_hold == pytest.approx(0.25, abs=0.03)
        average = (1 - p_hold) * 5 + p_hold * 10
        assert average == pytest.approx(6.25, abs=0.25)
        # The paper's "28% performance improvement": 8 / 6.25 = 1.28.
        assert 8.0 / average == pytest.approx(1.28, abs=0.06)

    def test_hold_guarantees_short_carry_chain(self):
        """When hold = 0 the carry chain through the monitored stages is
        broken, so the adder's true delay fits the short cycle."""
        nl = variable_latency_rca(8, hold_positions=(3, 4))
        circuit = CompiledCircuit(nl)
        rng = np.random.default_rng(6)
        a = rng.integers(0, 256, 2000, dtype=np.uint64)
        b = rng.integers(0, 256, 2000, dtype=np.uint64)
        result = circuit.run({"a": a, "b": b})
        hold = result.outputs["hold"].astype(bool)
        short = result.delays[~hold]
        # Non-held operations never reach the worst observed delay.
        assert short.max() < result.delays.max()

    def test_bad_hold_position_rejected(self):
        with pytest.raises(NetlistError):
            variable_latency_rca(8, hold_positions=(9,))

    def test_too_narrow_rejected(self):
        with pytest.raises(NetlistError):
            variable_latency_rca(1)
