"""Structural multiplier generators: functional exactness and structure."""

import numpy as np
import pytest

from repro.arith import (
    array_multiplier,
    column_bypass_multiplier,
    count_ones,
    count_zeros,
    golden_product,
    golden_products,
    row_bypass_multiplier,
)
from repro.errors import NetlistError, WorkloadError
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands

GENERATORS = {
    "am": array_multiplier,
    "cb": column_bypass_multiplier,
    "rb": row_bypass_multiplier,
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("width", [2, 3, 4, 5])
def test_exhaustive_correctness(name, width):
    """Every operand pair multiplies exactly (the bypass transformations
    are exact, not approximate)."""
    netlist = GENERATORS[name](width)
    circuit = CompiledCircuit(netlist)
    n = 1 << width
    a = np.repeat(np.arange(n, dtype=np.uint64), n)
    b = np.tile(np.arange(n, dtype=np.uint64), n)
    result = circuit.run({"md": a, "mr": b})
    assert np.array_equal(result.outputs["p"], golden_products(a, b, width))


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_random_correctness_16(name):
    netlist = GENERATORS[name](16)
    circuit = CompiledCircuit(netlist)
    md, mr = uniform_operands(16, 3000, seed=7)
    result = circuit.run({"md": md, "mr": mr})
    assert np.array_equal(result.outputs["p"], golden_products(md, mr, 16))


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_corner_operands(name):
    """All-zeros, all-ones, single-bit walks."""
    width = 8
    top = (1 << width) - 1
    netlist = GENERATORS[name](width)
    circuit = CompiledCircuit(netlist)
    md = np.array(
        [0, top, 0, top, 1, 128, 85, 170] + [1 << k for k in range(width)],
        dtype=np.uint64,
    )
    mr = np.array(
        [0, top, top, 0, 1, 128, 170, 85] + [top] * width, dtype=np.uint64
    )
    result = circuit.run({"md": md, "mr": mr})
    assert np.array_equal(result.outputs["p"], golden_products(md, mr, width))


class TestStructure:
    def test_ports(self, cb4):
        assert cb4.input_ports["md"].width == 4
        assert cb4.input_ports["mr"].width == 4
        assert cb4.output_ports["p"].width == 8

    def test_width_one_rejected(self):
        for generator in GENERATORS.values():
            with pytest.raises(NetlistError):
                generator(1)

    def test_bypass_adds_cells(self, am4, cb4, rb4):
        assert len(cb4.cells) > len(am4.cells)
        assert len(rb4.cells) > len(am4.cells)

    def test_row_bypass_larger_than_column(self):
        """Fig. 25: RB carries the extended final adder and extra muxes."""
        cb = column_bypass_multiplier(8)
        rb = row_bypass_multiplier(8)
        assert len(rb.cells) > len(cb.cells)

    def test_column_groups_per_diagonal(self, cb4):
        # The leftmost diagonal (d = width-1) degenerates: its cells'
        # sum/carry inputs are structurally 0, so no gated cells exist.
        groups = {cell.group for cell in cb4.cells if cell.group}
        assert groups == {"cbd%d" % d for d in range(3)}
        # Each group's enable is the matching multiplicand bit.
        md = cb4.input_ports["md"].nets
        for d in range(4):
            assert cb4.group_enables["cbd%d" % d] == md[d]

    def test_row_groups_per_row(self, rb4):
        groups = {cell.group for cell in rb4.cells if cell.group}
        assert groups == {"rbr%d" % i for i in range(1, 4)}
        mr = rb4.input_ports["mr"].nets
        for i in range(1, 4):
            assert rb4.group_enables["rbr%d" % i] == mr[i]

    def test_bypass_cell_types_match_paper(self, cb4):
        """Column bypassing adds tri-state gates and muxes (Fig. 2)."""
        stats = cb4.stats()
        assert stats.get("TRIBUF", 0) > 0
        assert stats.get("MUX2", 0) > 0

    def test_quadratic_growth(self):
        small = len(array_multiplier(8).cells)
        large = len(array_multiplier(16).cells)
        assert 3.0 < large / small < 5.0  # ~4x for 2x width

    def test_netlists_validate(self, am16, cb16, rb16):
        for nl in (am16, cb16, rb16):
            nl.validate()


class TestReferenceModels:
    def test_golden_product_range_check(self):
        with pytest.raises(WorkloadError):
            golden_product(16, 1, 4)
        assert golden_product(15, 15, 4) == 225

    def test_golden_products_vector(self):
        a = np.array([3, 5], dtype=np.uint64)
        b = np.array([7, 9], dtype=np.uint64)
        assert golden_products(a, b, 4).tolist() == [21, 45]

    def test_golden_products_overflow_rejected(self):
        with pytest.raises(WorkloadError):
            golden_products([16], [1], 4)

    def test_count_zeros_and_ones_complement(self):
        values = np.array([0, 1, 0xFFFF, 0x0F0F], dtype=np.uint64)
        zeros = count_zeros(values, 16)
        ones = count_ones(values, 16)
        assert np.array_equal(zeros + ones, np.full(4, 16))
        assert zeros.tolist() == [16, 15, 0, 8]

    def test_count_zeros_width_check(self):
        with pytest.raises(WorkloadError):
            count_zeros([256], 8)
