"""Distributed campaign execution (repro.distrib).

The contract under test is byte-identity: any pool transport (local
process pool, TCP workers, manifest files) and any sharding must merge
to exactly the serial result -- sorted JSON and rendered text alike.
The suite exercises the three transports end-to-end (TCP against real
in-process servers), the JSON job protocol, and the merge validators
(fingerprint mismatch, incomplete coverage, non-contiguous tiling).
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.distrib.jobs import JOB_KINDS, clear_state_cache, run_job
from repro.distrib.pool import (
    LocalPool,
    ManifestPool,
    TcpPool,
    WorkerPool,
    execute_manifest,
    local_worker,
    parse_pool_spec,
    run_campaign_pooled,
    run_mc_pooled,
    run_suite_pooled,
)
from repro.distrib.worker import WorkerServer
from repro.errors import (
    ConfigError,
    DistribError,
    FaultError,
    ManifestPending,
)
from repro.experiments.scheduler import shard_ranges
from repro.faults.campaign import (
    campaign_from_spec,
    merge_campaign_shards,
)
from repro.montecarlo.runner import (
    mc_job_spec,
    merge_mc_shards,
    run_mc_shard,
)
from repro.montecarlo.spec import MonteCarloSpec

#: One small campaign every test shares (6 sites x 80 patterns on the
#: 4-bit column-bypass design keeps each full sweep around a second).
CAMPAIGN_SPEC = {
    "width": 4,
    "kind": "column",
    "sites": 6,
    "patterns": 80,
    "characterize_patterns": 80,
    "seed": 7,
    "years": 0.0,
}

MC_SPEC = MonteCarloSpec(
    num_dies=12,
    num_patterns=48,
    die_chunk=6,
    years=(0.0, 3.0),
    clock_fractions=(0.9, 1.0),
)


def _campaign_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def serial_campaign():
    """The single-host reference result (and its sorted JSON)."""
    result = campaign_from_spec(CAMPAIGN_SPEC).run()
    return result, _campaign_json(result)


@pytest.fixture(scope="module")
def mc_job():
    return mc_job_spec(MC_SPEC, 4, "column", None, characterize_patterns=80)


@pytest.fixture(scope="module")
def mc_serial_shard(mc_job):
    """The whole population priced as one shard -- the merge reference."""
    return run_mc_shard(mc_job, (0, MC_SPEC.num_dies))


class TestParsePoolSpec:
    def test_local(self):
        pool = parse_pool_spec("local:3")
        assert isinstance(pool, LocalPool) and pool.size == 3

    def test_tcp(self):
        pool = parse_pool_spec("tcp:hostA:9100,hostB:9101")
        assert isinstance(pool, TcpPool)
        assert pool.addresses == [("hostA", 9100), ("hostB", 9101)]
        assert pool.size == 2

    def test_manifest(self, tmp_path):
        pool = parse_pool_spec("manifest:%s" % tmp_path)
        assert isinstance(pool, ManifestPool)
        assert pool.directory == str(tmp_path) and pool.size == 2

    def test_manifest_with_shards(self, tmp_path):
        pool = parse_pool_spec("manifest:%s:5" % tmp_path)
        assert pool.directory == str(tmp_path) and pool.size == 5

    def test_unknown_scheme_did_you_mean(self):
        with pytest.raises(ConfigError, match="did you mean 'local'"):
            parse_pool_spec("locl:4")

    @pytest.mark.parametrize(
        "bad", ["local:abc", "tcp:hostonly", "tcp:h:xyz", "manifest:"]
    )
    def test_malformed_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_pool_spec(bad)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            parse_pool_spec("local:0")


class TestRunJob:
    def test_ping(self):
        assert run_job({"job": "ping"}) == {"pong": True}

    def test_unknown_kind_did_you_mean(self):
        with pytest.raises(ConfigError, match="did you mean 'mc_shard'"):
            run_job({"job": "mc_sard"})
        with pytest.raises(ConfigError, match=", ".join(JOB_KINDS)):
            run_job({"job": "bogus"})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            run_job(["not", "a", "dict"])

    def test_fault_sites_validation(self):
        with pytest.raises(ConfigError, match="'spec' dict"):
            run_job({"job": "fault_sites", "sites": [0]})
        with pytest.raises(ConfigError, match="'sites' list"):
            run_job({"job": "fault_sites", "spec": dict(CAMPAIGN_SPEC)})
        with pytest.raises(ConfigError, match="outside"):
            run_job(
                {
                    "job": "fault_sites",
                    "spec": dict(CAMPAIGN_SPEC),
                    "sites": [999],
                }
            )

    def test_fault_sites_reports(self, serial_campaign):
        serial, _ = serial_campaign
        result = run_job(
            {
                "job": "fault_sites",
                "spec": dict(CAMPAIGN_SPEC),
                "sites": [0, 2],
            }
        )
        reports = {index: data for index, data in result["reports"]}
        assert set(reports) == {0, 2}
        # Checkpoint-compatible payloads, identical to the serial run's.
        assert reports[0] == serial.sites[0].to_dict()
        assert reports[2] == serial.sites[2].to_dict()

    def test_state_cached_per_spec(self):
        clear_state_cache()
        run_job(
            {
                "job": "fault_sites",
                "spec": dict(CAMPAIGN_SPEC),
                "sites": [0],
            }
        )
        from repro.distrib import jobs

        before = len(jobs._STATE_CACHE)
        run_job(
            {
                "job": "fault_sites",
                "spec": dict(CAMPAIGN_SPEC),
                "sites": [1],
            }
        )
        assert len(jobs._STATE_CACHE) == before

    def test_local_worker_envelopes_errors(self):
        envelope = local_worker({"job": "bogus"})
        assert envelope["ok"] is False
        assert "bogus" in envelope["error"]
        ok = local_worker({"job": "ping"})
        assert ok == {"ok": True, "result": {"pong": True}}


class TestCampaignSharding:
    def test_site_range_scopes_result(self):
        campaign = campaign_from_spec(CAMPAIGN_SPEC)
        partial = campaign.run(site_range=(2, 5))
        assert partial.requested_sites == 3
        assert partial.num_sites == 3

    def test_bad_site_range_rejected(self):
        campaign = campaign_from_spec(CAMPAIGN_SPEC)
        with pytest.raises(FaultError, match="site_range"):
            campaign.run(site_range=(4, 99))

    def test_shard_merge_byte_identical(self, tmp_path, serial_campaign):
        _, expected = serial_campaign
        total = len(campaign_from_spec(CAMPAIGN_SPEC).faults)
        paths = []
        for i, rng in enumerate(shard_ranges(total, 2)):
            path = str(tmp_path / ("shard%d.jsonl" % i))
            campaign_from_spec(CAMPAIGN_SPEC).run(
                site_range=rng, checkpoint=path
            )
            paths.append(path)
        merged = merge_campaign_shards(
            campaign_from_spec(CAMPAIGN_SPEC), paths
        )
        assert _campaign_json(merged) == expected

    def test_merge_missing_shard_rejected(self, tmp_path):
        campaign = campaign_from_spec(CAMPAIGN_SPEC)
        path = str(tmp_path / "only.jsonl")
        campaign_from_spec(CAMPAIGN_SPEC).run(
            site_range=(0, 2), checkpoint=path
        )
        with pytest.raises(FaultError, match="incomplete"):
            merge_campaign_shards(campaign, [path])
        with pytest.raises(FaultError, match="no shard checkpoints"):
            merge_campaign_shards(campaign, [])

    def test_merge_foreign_checkpoint_rejected(self, tmp_path):
        from repro.errors import CheckpointError

        other = dict(CAMPAIGN_SPEC, seed=8)
        path = str(tmp_path / "foreign.jsonl")
        campaign_from_spec(other).run(site_range=(0, 2), checkpoint=path)
        with pytest.raises(CheckpointError):
            merge_campaign_shards(campaign_from_spec(CAMPAIGN_SPEC), [path])

    def test_pool_requires_spec(self):
        campaign = campaign_from_spec(CAMPAIGN_SPEC)
        with pytest.raises(FaultError, match="pool_spec"):
            campaign.run(pool=LocalPool(1))

    def test_local_pool_byte_identical(self, serial_campaign):
        _, expected = serial_campaign
        with LocalPool(2) as pool:
            pooled = campaign_from_spec(CAMPAIGN_SPEC).run(
                pool=pool, pool_spec=dict(CAMPAIGN_SPEC)
            )
        assert _campaign_json(pooled) == expected


class TestMonteCarloSharding:
    def test_shard_merge_byte_identical(self, mc_job, mc_serial_shard):
        from repro.analysis.serialize import to_json
        from repro.montecarlo.runner import run_montecarlo

        serial = run_montecarlo(
            MC_SPEC, width=4, kind="column", characterize_patterns=80
        )
        shards = [
            run_mc_shard(mc_job, rng)
            for rng in shard_ranges(MC_SPEC.num_dies, 3)
        ]
        # JSON round trip (what --shard-json files go through).
        shards = json.loads(json.dumps(shards))
        merged = merge_mc_shards(mc_job, list(reversed(shards)))
        assert to_json(merged, indent=2) == to_json(serial, indent=2)

    def test_single_shard_merges(self, mc_job, mc_serial_shard):
        merged = merge_mc_shards(mc_job, [mc_serial_shard])
        assert merged.num_dies == MC_SPEC.num_dies

    def test_fingerprint_mismatch_rejected(self, mc_job, mc_serial_shard):
        other = dict(mc_job, width=8)
        with pytest.raises(ConfigError, match="fingerprint"):
            merge_mc_shards(other, [mc_serial_shard])

    def test_gap_in_tiling_rejected(self, mc_job):
        shards = [
            run_mc_shard(mc_job, (0, 4)),
            run_mc_shard(mc_job, (8, MC_SPEC.num_dies)),
        ]
        with pytest.raises(ConfigError):
            merge_mc_shards(mc_job, shards)

    def test_bad_die_range_rejected(self, mc_job):
        with pytest.raises(ConfigError, match="die_range"):
            run_mc_shard(mc_job, (5, 400))

    def test_local_pool_matches_shards(self, mc_job, mc_serial_shard):
        with LocalPool(2) as pool:
            payloads = run_mc_pooled(
                pool, mc_job, shard_ranges(MC_SPEC.num_dies, 2)
            )
        merged = merge_mc_shards(mc_job, payloads)
        reference = merge_mc_shards(mc_job, [mc_serial_shard])
        from repro.analysis.serialize import to_json

        assert to_json(merged, indent=2) == to_json(reference, indent=2)


@pytest.fixture()
def tcp_servers():
    """Two real WorkerServers on ephemeral ports, in-process."""
    servers, threads = [], []
    for _ in range(2):
        server = WorkerServer("127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_until_shutdown, daemon=True
        )
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield [("127.0.0.1", server.port) for server in servers]
    for server in servers:
        server.shutdown()
        server.server_close()
    for thread in threads:
        thread.join(timeout=5)


class TestTcpTransport:
    def test_ping_round_trip(self, tcp_servers):
        response = TcpPool.call(tcp_servers[0], {"op": "ping"})
        assert response["ok"] and response["result"] == {"pong": True}
        assert response["protocol"] == "repro-distrib"

    def test_job_error_comes_back_enveloped(self, tcp_servers):
        response = TcpPool.call(tcp_servers[0], {"job": "bogus"})
        assert response["ok"] is False and "bogus" in response["error"]

    def test_malformed_line_survives_connection(self, tcp_servers):
        import socket

        host, port = tcp_servers[0]
        with socket.create_connection((host, port), timeout=10) as conn:
            conn.sendall(b"this is not json\n")
            with conn.makefile("rb") as stream:
                first = json.loads(stream.readline())
                assert first["ok"] is False
                # The connection is still serviceable afterwards.
                conn.sendall(b'{"op": "ping"}\n')
                second = json.loads(stream.readline())
                assert second["ok"] is True

    def test_campaign_byte_identical(self, tcp_servers, serial_campaign):
        _, expected = serial_campaign
        pool = TcpPool(tcp_servers)
        pooled = campaign_from_spec(CAMPAIGN_SPEC).run(
            pool=pool, pool_spec=dict(CAMPAIGN_SPEC)
        )
        assert _campaign_json(pooled) == expected

    def test_unreachable_worker_is_typed(self):
        pool = TcpPool([("127.0.0.1", 1)])  # nothing listens on port 1
        with pytest.raises(DistribError, match="unreachable"):
            pool.map([{"op": "ping"}])


class TestManifestTransport:
    def test_two_phase_flow(self, tmp_path, serial_campaign):
        _, expected = serial_campaign
        directory = str(tmp_path / "shared")
        pool = ManifestPool(directory)
        spec = dict(CAMPAIGN_SPEC)
        with pytest.raises(ManifestPending) as info:
            campaign_from_spec(CAMPAIGN_SPEC).run(
                pool=pool, pool_spec=spec
            )
        assert info.value.directory == directory
        assert info.value.missing > 0
        executed = execute_manifest(directory)
        assert executed == info.value.missing
        pooled = campaign_from_spec(CAMPAIGN_SPEC).run(
            pool=pool, pool_spec=spec
        )
        assert _campaign_json(pooled) == expected

    def test_claims_prevent_double_execution(self, tmp_path):
        directory = str(tmp_path / "shared")
        pool = ManifestPool(directory)
        with pytest.raises(ManifestPending):
            pool.map([{"job": "ping"}, {"job": "ping"}])
        assert execute_manifest(directory) == 2
        # A second executor finds everything claimed + done.
        assert execute_manifest(directory) == 0

    def test_exec_without_requests_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no manifest requests"):
            execute_manifest(str(tmp_path / "empty"))


class TestSuitePooled:
    def test_errors_degrade_not_raise(self):
        class OneShotPool(WorkerPool):
            size = 1

            def map(self, requests):
                return [local_worker(request) for request in requests]

        responses = run_suite_pooled(
            OneShotPool(),
            [
                {"job": "ping"},
                {"job": "experiment", "name": "no-such-experiment"},
            ],
        )
        assert responses[0] == {"pong": True}
        assert "error" in responses[1]


class TestCliPlumbing:
    def test_faults_parser_accepts_distrib_flags(self):
        from repro.faults.__main__ import make_parser

        args = make_parser().parse_args(
            ["run", "--shard", "2/4", "--pool", "local:2",
             "--kernel", "numba"]
        )
        assert args.shard == (2, 4)
        assert args.pool == "local:2"
        assert args.kernel == "numba"

    def test_faults_parser_rejects_bad_shard(self, capsys):
        from repro.faults.__main__ import make_parser

        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "--shard", "3/2"])
        assert "shard must be I/N" in capsys.readouterr().err

    def test_mc_parser_accepts_distrib_flags(self):
        from repro.montecarlo.cli import make_parser

        args = make_parser().parse_args(
            ["--shard", "1/2", "--shard-json", "x.json",
             "--kernel", "soa", "--pool", "manifest:/tmp/x"]
        )
        assert args.shard == (1, 2)
        assert args.shard_json == "x.json"

    def test_mc_shard_needs_output_path(self):
        from repro.montecarlo import cli

        assert cli.main(["--shard", "1/2", "--dies", "4"]) == 2

    def test_distrib_registered_in_top_level_cli(self):
        from repro.__main__ import COMMANDS

        assert "distrib" in COMMANDS
