"""Backoff schedules, the retry driver, and the two-layer FileLock."""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ConfigError, LockTimeoutError, RetryExhaustedError
from repro.util import Backoff, FileLock, retry_call


class TestBackoff:
    def test_schedule_without_jitter(self):
        schedule = Backoff(
            initial_s=0.01, factor=2.0, max_delay_s=0.04,
            max_elapsed_s=None, max_attempts=5, jitter=0.0,
        )
        assert list(schedule.delays()) == pytest.approx(
            [0.01, 0.02, 0.04, 0.04, 0.04]
        )

    def test_max_elapsed_bounds_planned_sleep(self):
        schedule = Backoff(
            initial_s=1.0, factor=1.0, max_delay_s=1.0,
            max_elapsed_s=2.5, jitter=0.0,
        )
        # A third delay would push the planned total to 3.0 > 2.5.
        assert list(schedule.delays()) == pytest.approx([1.0, 1.0])

    def test_jitter_deterministic_under_seed(self):
        kwargs = dict(
            initial_s=0.01, max_delay_s=0.08, max_elapsed_s=None,
            max_attempts=6, jitter=0.5,
        )
        a = list(Backoff(seed=42, **kwargs).delays())
        b = list(Backoff(seed=42, **kwargs).delays())
        c = list(Backoff(seed=43, **kwargs).delays())
        assert a == b
        assert a != c
        # Jitter only ever adds, bounded by the configured fraction.
        bare = list(Backoff(**dict(kwargs, jitter=0.0)).delays())
        for jittered, base in zip(a, bare):
            assert base <= jittered <= base * 1.5 + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            Backoff(initial_s=0.0)
        with pytest.raises(ConfigError):
            Backoff(factor=0.5)
        with pytest.raises(ConfigError):
            Backoff(initial_s=0.5, max_delay_s=0.1)
        with pytest.raises(ConfigError):
            Backoff(jitter=-1.0)
        with pytest.raises(ConfigError):
            Backoff(max_elapsed_s=None, max_attempts=None)


class TestRetryCall:
    def test_success_passthrough(self):
        assert retry_call(lambda: 41 + 1) == 42

    def test_retries_then_succeeds(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "done"

        result = retry_call(
            flaky,
            backoff=Backoff(
                initial_s=0.01, max_delay_s=0.04, max_elapsed_s=None,
                max_attempts=5, jitter=0.0,
            ),
            sleep=slept.append,
        )
        assert result == "done"
        assert calls["n"] == 3
        assert slept == pytest.approx([0.01, 0.02])

    def test_exhaustion_raises_typed_error(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("still broken")

        with pytest.raises(RetryExhaustedError) as info:
            retry_call(
                always_fails,
                description="doomed op",
                backoff=Backoff(
                    initial_s=0.001, max_delay_s=0.001,
                    max_elapsed_s=None, max_attempts=3, jitter=0.0,
                ),
                sleep=lambda _s: None,
            )
        # 3 scheduled delays + the final attempt after the last sleep.
        assert info.value.attempts == 4
        assert calls["n"] == 4
        assert "doomed op" in str(info.value)
        assert isinstance(info.value.__cause__, OSError)

    def test_unlisted_exception_propagates_immediately(self):
        def bad():
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_call(bad, retry_on=(OSError,), sleep=lambda _s: None)


class TestFileLockThreads:
    def test_exclusion_between_threads(self, tmp_path):
        path = str(tmp_path / "x.lock")
        order = []
        holder_entered = threading.Event()
        release = threading.Event()

        def holder():
            with FileLock(path, timeout_s=5.0):
                order.append("holder-in")
                holder_entered.set()
                release.wait(timeout=10.0)
                order.append("holder-out")

        def waiter():
            holder_entered.wait(timeout=10.0)
            with FileLock(path, timeout_s=5.0):
                order.append("waiter-in")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        holder_entered.wait(timeout=10.0)
        time.sleep(0.05)  # give the waiter time to block on the lock
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert order == ["holder-in", "holder-out", "waiter-in"]

    def test_contended_thread_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path, timeout_s=5.0):
            with pytest.raises(LockTimeoutError) as info:
                FileLock(path, timeout_s=0.2).acquire()
        assert info.value.path == os.path.abspath(path)
        # Released now: immediately acquirable again.
        with FileLock(path, timeout_s=0.2):
            pass

    def test_not_reentrant(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"), timeout_s=0.2)
        with lock:
            with pytest.raises(LockTimeoutError):
                lock.acquire()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        lock.acquire()
        lock.release()
        lock.release()
        assert not lock.locked


_CHILD_HOLDER = """
import sys, time
from repro.util import FileLock

path, ready_path = sys.argv[1], sys.argv[2]
with FileLock(path, timeout_s=5.0):
    open(ready_path, "w").write("held")
    time.sleep(%f)
"""


class TestFileLockProcesses:
    def test_cross_process_contention(self, tmp_path):
        lock_path = str(tmp_path / "shared.lock")
        ready_path = str(tmp_path / "ready")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH", ""),
            ] if p
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_HOLDER % 10.0,
             lock_path, ready_path],
            env=env,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not os.path.exists(ready_path):
                assert child.poll() is None, "lock-holder child died"
                assert time.monotonic() < deadline, "child never ready"
                time.sleep(0.01)
            with pytest.raises(LockTimeoutError):
                FileLock(lock_path, timeout_s=0.3).acquire()
        finally:
            child.kill()
            child.wait()
        # Holder gone: the flock died with its descriptor.
        with FileLock(lock_path, timeout_s=2.0):
            pass
