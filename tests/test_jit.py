"""JIT backend mechanics: force-python mode, fallback, plan caching.

``tests/test_kernel.py`` carries the cross-kernel bit-identity matrix
(it parametrizes every equivalence case over ``kernel="numba"``); this
module tests the machinery *around* the kernels -- the numba-absent
fallback contract, the pure-python escape hatch, ``warmup()``, plan
caching, value-plane byte-identity and input-port fault hooks -- so a
container without numba still exercises every dispatch branch.
"""

import numpy as np
import pytest

from repro.arith import column_bypass_multiplier
from repro.faults.injector import compile_with_faults
from repro.faults.models import StuckAtFault, TransientBitFlip
from repro.timing import (
    ArrivalReplay,
    CompiledCircuit,
    build_value_plane,
)
from repro.timing import jit
from repro.timing import replay as replay_mod
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def cb4():
    return column_bypass_multiplier(4)


@pytest.fixture(scope="module")
def stream4():
    md, mr = uniform_operands(4, 120, seed=11)
    return {"md": md, "mr": mr}


@pytest.fixture
def pure_python():
    previous = jit.force_python(True)
    yield
    jit.force_python(previous)


def assert_streams_equal(a, b, caps_exact=False):
    for name in a.outputs:
        assert np.array_equal(a.outputs[name], b.outputs[name])
    assert np.array_equal(a.delays, b.delays)
    if caps_exact:
        assert np.array_equal(a.switched_caps, b.switched_caps)
    else:
        assert np.allclose(a.switched_caps, b.switched_caps,
                           rtol=1e-12, atol=1e-9)


class TestForcePython:
    def test_force_python_round_trip(self):
        previous = jit.force_python(True)
        try:
            assert jit.jit_enabled()
            assert jit.force_python(True) is True  # returns prior state
        finally:
            jit.force_python(previous)

    def test_jit_disabled_without_numba_by_default(self):
        previous = jit.force_python(False)
        try:
            assert jit.jit_enabled() == jit.HAVE_NUMBA
        finally:
            jit.force_python(previous)

    def test_pure_python_matches_soa(self, cb4, stream4, pure_python):
        want = CompiledCircuit(cb4).run(
            stream4, collect_bit_arrivals=True, collect_net_stats=True
        )
        got = CompiledCircuit(cb4, kernel="numba").run(
            stream4, collect_bit_arrivals=True, collect_net_stats=True
        )
        assert_streams_equal(got, want)
        for name in want.bit_arrivals:
            assert np.array_equal(got.bit_arrivals[name],
                                  want.bit_arrivals[name])
        assert np.array_equal(got.signal_prob, want.signal_prob)
        assert np.array_equal(got.toggle_counts, want.toggle_counts)


class TestFallback:
    def test_numba_kernel_accepted_without_numba(self, cb4, stream4):
        # kernel="numba" must never raise when numba is missing: it
        # silently executes the SoA path, byte-identical to it.
        previous = jit.force_python(False)
        try:
            if jit.HAVE_NUMBA:
                pytest.skip("numba installed; fallback path not reachable")
            got = CompiledCircuit(cb4, kernel="numba").run(stream4)
            want = CompiledCircuit(cb4).run(stream4)
            assert_streams_equal(got, want, caps_exact=True)
        finally:
            jit.force_python(previous)

    def test_fallback_replay_identical(self, cb4, stream4):
        previous = jit.force_python(False)
        try:
            if jit.HAVE_NUMBA:
                pytest.skip("numba installed; fallback path not reachable")
            rng = np.random.default_rng(7)
            scales = 1.0 + rng.uniform(0.0, 0.3, (2, len(cb4.cells)))
            results = {}
            for kernel in ("soa", "numba"):
                circuit = CompiledCircuit(cb4, kernel=kernel)
                plane = build_value_plane(circuit, stream4)
                results[kernel] = ArrivalReplay(circuit, plane).replay(
                    scales, collect_bit_arrivals=True
                )
            assert np.array_equal(results["soa"].delays,
                                  results["numba"].delays)
        finally:
            jit.force_python(previous)

    def test_warmup_reports_availability(self):
        previous = jit.force_python(False)
        try:
            # warmup() compiles eagerly iff real numba is importable;
            # pure-python mode has nothing to compile.
            assert jit.warmup() == jit.HAVE_NUMBA
        finally:
            jit.force_python(previous)

    def test_warmup_noop_in_pure_python_mode(self, pure_python):
        assert jit.warmup() is False


class TestPlan:
    def test_plan_cached_per_circuit(self, cb4, pure_python):
        circuit = CompiledCircuit(cb4, kernel="numba")
        plan = jit.get_plan(circuit)
        assert jit.get_plan(circuit) is plan
        assert plan.num_cells == len(cb4.cells)
        assert plan.pins.shape == (plan.num_cells, 3)

    def test_value_plane_bytes_identical(self, cb4, stream4, pure_python):
        planes = {}
        for kernel in ("soa", "numba"):
            circuit = CompiledCircuit(cb4, kernel=kernel)
            planes[kernel] = build_value_plane(circuit, stream4)
        a, b = planes["soa"], planes["numba"]
        assert np.array_equal(a.may_packed, b.may_packed)
        assert np.array_equal(a.aux_packed, b.aux_packed)

    def test_replay_many_chunks(self, cb4, stream4, pure_python,
                                monkeypatch):
        circuit = CompiledCircuit(cb4, kernel="numba")
        plane = build_value_plane(circuit, stream4)
        rng = np.random.default_rng(3)
        scales = 1.0 + rng.uniform(0.0, 0.4, (3, len(cb4.cells)))
        whole = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        monkeypatch.setattr(replay_mod, "REPLAY_CHUNK_TARGET_BYTES", 1)
        chunked = ArrivalReplay(circuit, plane).replay(
            scales, collect_bit_arrivals=True
        )
        assert np.array_equal(whole.delays, chunked.delays)
        for name in whole.bit_arrivals:
            assert np.array_equal(whole.bit_arrivals[name],
                                  chunked.bit_arrivals[name])


class TestHooks:
    def test_input_port_hook(self, cb4, stream4, pure_python):
        # Hooks on primary-input nets run before the value pass, not
        # between JIT segments -- a separate code path in the wrapper.
        net = next(iter(cb4.input_ports.values())).nets[1]
        faults = [StuckAtFault(net=net, value=1)]
        want = compile_with_faults(cb4, faults, kernel="soa").run(stream4)
        got = compile_with_faults(cb4, faults, kernel="numba").run(stream4)
        assert_streams_equal(got, want)

    def test_hooked_cells_segment_value_pass(self, cb4, stream4,
                                             pure_python):
        # Two hooked cells split the topological order into three JIT
        # segments with scalar hook evaluation in between.
        faults = [
            StuckAtFault(net=cb4.cells[3].output, value=0),
            TransientBitFlip(net=cb4.cells[11].output, rate=0.3, seed=5),
        ]
        for mode in ("inertial", "floating"):
            want = compile_with_faults(
                cb4, faults, mode=mode, kernel="soa"
            ).run(stream4, collect_bit_arrivals=True)
            got = compile_with_faults(
                cb4, faults, mode=mode, kernel="numba"
            ).run(stream4, collect_bit_arrivals=True)
            assert_streams_equal(got, want)
            for name in want.bit_arrivals:
                assert np.array_equal(got.bit_arrivals[name],
                                      want.bit_arrivals[name])
