"""Fixed-latency baselines."""

import pytest

from repro.core.baselines import FixedLatencyDesign, build_multiplier
from repro.errors import ConfigError
from repro.timing import StaticTiming


@pytest.fixture(scope="module")
def flcb8():
    return FixedLatencyDesign.build(8, "column", characterize_patterns=300)


class TestBuildMultiplier:
    def test_dispatch(self):
        assert build_multiplier(4, "am").name == "am-4x4"
        assert build_multiplier(4, "column").name == "cb-4x4"
        assert build_multiplier(4, "row").name == "rb-4x4"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            build_multiplier(4, "booth")


class TestFixedLatencyDesign:
    def test_latency_is_critical_path(self, flcb8):
        sta = StaticTiming(flcb8.netlist, flcb8.technology)
        assert flcb8.latency_ns(0.0) == pytest.approx(sta.critical_delay)

    def test_latency_grows_with_age(self, flcb8):
        assert flcb8.latency_ns(7.0) > flcb8.latency_ns(0.0)

    def test_latency_cached(self, flcb8):
        assert flcb8.latency_ns(5.0) == flcb8.latency_ns(5.0)

    def test_degradation_ratio_matches_calibration(self):
        """The 16x16 CB calibration target: ~13% at 7 years (Fig. 7)."""
        design = FixedLatencyDesign.build(
            16, "column", characterize_patterns=800
        )
        assert design.degradation_ratio(7.0) == pytest.approx(0.13, abs=0.02)

    def test_run_stream(self, flcb8):
        import numpy as np

        md = np.arange(20, dtype=np.uint64)
        mr = np.arange(20, dtype=np.uint64)
        result = flcb8.run_stream(md, mr)
        assert result.num_patterns == 20

    def test_name_defaults_to_netlist(self, flcb8):
        assert flcb8.name == flcb8.netlist.name
