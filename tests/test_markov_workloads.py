"""Temporally correlated workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.timing import CompiledCircuit
from repro.workloads.generators import uniform_operands
from repro.workloads.markov import (
    bit_markov_stream,
    correlated_operands,
    lazy_stream,
    random_walk_stream,
)


class TestLazyStream:
    def test_holds_at_requested_rate(self):
        values = lazy_stream(16, 5000, hold_probability=0.7, seed=3)
        repeats = float((values[1:] == values[:-1]).mean())
        assert repeats == pytest.approx(0.7, abs=0.03)

    def test_zero_hold_is_iid(self):
        values = lazy_stream(16, 3000, hold_probability=0.0, seed=3)
        repeats = float((values[1:] == values[:-1]).mean())
        assert repeats < 0.01

    def test_validation(self):
        with pytest.raises(WorkloadError):
            lazy_stream(16, 10, hold_probability=1.0)


class TestBitMarkov:
    def test_flip_rate(self):
        values = bit_markov_stream(16, 4000, flip_probability=0.1, seed=5)
        flips = values[1:] ^ values[:-1]
        bits_flipped = np.array(
            [bin(int(v)).count("1") for v in flips]
        ).mean()
        assert bits_flipped == pytest.approx(1.6, abs=0.2)  # 16 * 0.1

    def test_stationary_is_unbiased(self):
        values = bit_markov_stream(8, 8000, flip_probability=0.3, seed=7)
        ones = np.array([bin(int(v)).count("1") for v in values]).mean()
        assert ones == pytest.approx(4.0, abs=0.3)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bit_markov_stream(8, 10, flip_probability=0.0)


class TestRandomWalk:
    def test_stays_in_range(self):
        values = random_walk_stream(12, 2000, seed=9)
        assert values.max() < 1 << 12

    def test_small_steps(self):
        values = random_walk_stream(16, 2000, step_scale=0.01, seed=9)
        jumps = np.abs(np.diff(values.astype(np.int64)))
        assert np.median(jumps) < 0.05 * (1 << 16)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_walk_stream(8, 10, step_scale=0.0)


class TestArchitecturalEffects:
    def test_correlation_cuts_switching_power(self, cb16_circuit):
        """Bursty operands toggle less: the power model must see it."""
        lazy_md, lazy_mr = correlated_operands(16, 1500, 0.8, seed=11)
        unif_md, unif_mr = uniform_operands(16, 1500, seed=11)
        lazy = cb16_circuit.run({"md": lazy_md, "mr": lazy_mr})
        uniform = cb16_circuit.run({"md": unif_md, "mr": unif_mr})
        assert (
            lazy.mean_switched_caps() < 0.6 * uniform.mean_switched_caps()
        )

    def test_repeated_patterns_have_zero_delay(self, cb16_circuit):
        """A held operand pair produces no transitions at all."""
        md = np.full(50, 0xBEEF, dtype=np.uint64)
        mr = np.full(50, 0x1234, dtype=np.uint64)
        result = cb16_circuit.run({"md": md, "mr": mr})
        assert np.all(result.delays == 0.0)

    def test_products_remain_exact(self, cb16_circuit):
        from repro.arith import golden_products

        md, mr = correlated_operands(16, 800, 0.7, seed=13)
        result = cb16_circuit.run({"md": md, "mr": mr})
        assert np.array_equal(
            result.outputs["p"], golden_products(md, mr, 16)
        )
