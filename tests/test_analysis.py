"""Histogram, table and series helpers."""

import numpy as np
import pytest

from repro.analysis import Histogram, Series, format_table, improvement
from repro.errors import SimulationError


class TestHistogram:
    def test_fraction_below(self):
        hist = Histogram.from_samples(
            [0.1, 0.2, 0.3, 0.9], num_bins=10, limits=(0.0, 1.0)
        )
        assert hist.fraction_below(0.5) == pytest.approx(0.75)
        assert hist.total == 4

    def test_mean_estimate(self):
        data = np.random.default_rng(1).normal(5.0, 0.5, 5000)
        hist = Histogram.from_samples(data, num_bins=50)
        assert hist.mean() == pytest.approx(data.mean(), abs=0.05)

    def test_mode_bin(self):
        hist = Histogram.from_samples(
            [1.0] * 10 + [2.0], num_bins=4, limits=(0.0, 4.0)
        )
        lo, hi = hist.mode_bin()
        assert lo <= 1.0 <= hi

    def test_render_contains_bars(self):
        hist = Histogram.from_samples([1, 1, 2], num_bins=2, name="demo")
        text = hist.render()
        assert "demo" in text
        assert "#" in text

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            Histogram.from_samples([])


class TestSeries:
    series = Series.build("s", [1.0, 2.0, 3.0], [5.0, 2.0, 4.0])

    def test_best(self):
        assert self.series.best() == (2.0, 2.0)

    def test_at_nearest(self):
        assert self.series.at(2.2) == 2.0

    def test_crossings(self):
        assert self.series.crossings_below(4.5) == [2.0, 3.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Series.build("bad", [1.0], [1.0, 2.0])


class TestTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 0.25]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "1.5" in text

    def test_improvement(self):
        assert improvement(0.75, 1.0) == pytest.approx(0.25)
        with pytest.raises(SimulationError):
            improvement(1.0, 0.0)
