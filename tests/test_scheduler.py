"""Suite planner/runner: plans, parallel identity, warm-store reuse."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    REGISTRY,
    ArtifactStore,
    Resources,
    plan_suite,
    run_suite,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.scheduler import _spec_weight

#: Cheap experiment subset used by the run_suite tests (16-bit designs,
#: modest pattern counts).
SUBSET = ("fig06", "fig07")
SCALE = 0.05
CHAR_PATTERNS = 300


class TestResources:
    def test_every_spec_declares_coherent_resources(self):
        for spec in REGISTRY.values():
            resources = spec.resources
            assert isinstance(resources, Resources)
            for width, kind in resources.designs + resources.netlists:
                assert width in (8, 16, 32)
                assert kind in ("am", "column", "row")
            for width in resources.streams:
                assert width in (8, 16, 32)
            # Designs imply their netlists exactly once.
            all_nets = resources.all_netlists()
            assert len(set(all_nets)) == len(all_nets)
            assert set(resources.designs) <= set(all_nets)

    def test_validation_rejects_bad_pairs(self):
        with pytest.raises(ConfigError):
            Resources(designs=((0, "column"),))
        with pytest.raises(ConfigError):
            Resources(designs=((16, 3),))


class TestPlanSuite:
    def test_dedup_and_widest_first(self):
        plan = plan_suite(["fig26", "fig27", "fig07"])
        # Each design appears once, 32-bit designs lead.
        assert len(set(plan.warmup_designs)) == len(plan.warmup_designs)
        widths = [width for width, _ in plan.warmup_designs]
        assert widths == sorted(widths, reverse=True)
        assert plan.names == ("fig26", "fig27", "fig07")

    def test_netlists_not_duplicated_as_designs(self):
        plan = plan_suite(list(REGISTRY))
        overlap = set(plan.warmup_designs) & set(plan.warmup_netlists)
        assert not overlap

    def test_unknown_name_rejected_with_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean"):
            plan_suite(["fig06", "ext_fault"])

    def test_spec_weight_prefers_wide_designs(self):
        assert _spec_weight("fig27") < _spec_weight("fig06")


class TestRunSuiteSerial:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
        )

    def test_entries_in_request_order(self, serial):
        assert [entry.name for entry in serial.entries] == list(SUBSET)
        for entry in serial.entries:
            assert entry.rendered
            assert entry.elapsed >= 0
            assert entry.result is not None

    def test_render_accounting(self, serial):
        text = serial.render()
        assert "suite: 2 experiments, jobs=1" in text
        for name in SUBSET:
            assert name in text

    def test_rendered_by_name(self, serial):
        rendered = serial.rendered_by_name()
        assert set(rendered) == set(SUBSET)

    def test_entry_lookup(self, serial):
        assert serial.entry("fig06").name == "fig06"
        with pytest.raises(ConfigError):
            serial.entry("fig99")

    def test_explicit_context_reused(self):
        ctx = ExperimentContext(
            scale=SCALE, characterize_patterns=CHAR_PATTERNS
        )
        result = run_suite(names=["fig07"], context=ctx)
        assert result.entries[0].rendered
        # The context kept its caches (the suite ran inside it).
        assert ctx._factories

    def test_on_result_streams_in_order(self):
        seen = []
        run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            on_result=lambda entry: seen.append(entry.name),
        )
        assert seen == list(SUBSET)


class TestRunSuiteValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            run_suite(names=["fig06"], jobs=0)

    def test_context_forces_serial(self):
        ctx = ExperimentContext(scale=SCALE)
        with pytest.raises(ConfigError):
            run_suite(names=SUBSET, jobs=2, context=ctx)


class TestStoreBackedRuns:
    def test_warm_rerun_hits_store_and_matches(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            store=ArtifactStore(store_dir),
        )
        warm = run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            store=ArtifactStore(store_dir),
        )
        assert cold.rendered_by_name() == warm.rendered_by_name()
        totals = {"hits": 0, "misses": 0, "writes": 0}
        for kind, stats in warm.store_counters.items():
            for name in totals:
                totals[name] += stats.get(name, 0)
        assert totals["hits"] > 0
        assert totals["misses"] == 0
        assert totals["writes"] == 0
        # Cold run wrote everything the warm run hit.
        assert cold.store_counters["stress"]["writes"] > 0

    def test_store_accepts_path_string(self, tmp_path):
        result = run_suite(
            names=["fig07"],
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            store=str(tmp_path / "store"),
        )
        assert result.store_dir == str(tmp_path / "store")
        assert result.total_hits() >= 0


class TestRunSuiteParallel:
    def test_parallel_matches_serial_bytes(self, tmp_path):
        serial = run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
        )
        parallel = run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            jobs=2,
            store=ArtifactStore(str(tmp_path / "store")),
        )
        assert parallel.jobs == 2
        assert serial.rendered_by_name() == parallel.rendered_by_name()
        assert [e.name for e in parallel.entries] == list(SUBSET)
        # Workers return rendered text only.
        assert all(e.result is None for e in parallel.entries)

    def test_parallel_without_store_uses_temp(self):
        seen = []
        result = run_suite(
            names=SUBSET,
            scale=SCALE,
            characterize_patterns=CHAR_PATTERNS,
            jobs=2,
            on_result=lambda entry: seen.append(entry.name),
        )
        assert result.store_dir is None  # temp store, already removed
        assert seen == list(SUBSET)  # emission stays in request order
