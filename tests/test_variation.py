"""Process-variation sampling and yield analysis."""

import numpy as np
import pytest

from repro.core import AgingAwareMultiplier
from repro.errors import ConfigError
from repro.timing.variation import (
    ProcessVariation,
    YieldReport,
    sample_dies,
    yield_analysis,
)


@pytest.fixture(scope="module")
def arch():
    return AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.55, characterize_patterns=300
    )


class TestSampling:
    def test_reproducible(self, cb4):
        variation = ProcessVariation()
        first = list(sample_dies(cb4, variation, 3, seed=5))
        second = list(sample_dies(cb4, variation, 3, seed=5))
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_shape_and_positivity(self, cb4):
        variation = ProcessVariation(0.1, 0.05)
        for die in sample_dies(cb4, variation, 5):
            assert die.shape == (len(cb4.cells),)
            assert np.all(die > 0)

    def test_zero_sigma_is_nominal(self, cb4):
        variation = ProcessVariation(0.0, 0.0)
        die = next(iter(sample_dies(cb4, variation, 1)))
        assert np.allclose(die, 1.0)

    def test_global_sigma_moves_dies_together(self, cb4):
        variation = ProcessVariation(sigma_global=0.3, sigma_local=0.0)
        dies = list(sample_dies(cb4, variation, 8, seed=9))
        # Each die is internally uniform; dies differ from each other.
        for die in dies:
            assert np.allclose(die, die[0])
        firsts = [die[0] for die in dies]
        assert max(firsts) / min(firsts) > 1.05

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProcessVariation(sigma_global=-0.1)

    def test_num_dies_validated(self, cb4):
        with pytest.raises(ConfigError):
            list(sample_dies(cb4, ProcessVariation(), 0))


class TestYieldAnalysis:
    @pytest.fixture(scope="class")
    def report(self, arch):
        return yield_analysis(
            arch, num_dies=10, num_patterns=600, seed=13
        )

    def test_report_shape(self, report):
        assert isinstance(report, YieldReport)
        assert report.num_dies == 10
        assert report.latencies_ns.shape == (10,)
        assert 0.0 <= report.yield_fraction <= 1.0

    def test_latency_statistics(self, report):
        assert report.worst_latency_ns >= report.mean_latency_ns
        assert report.latency_spread >= 0.0

    def test_variation_spreads_latency(self, arch):
        calm = yield_analysis(
            arch,
            num_dies=8,
            num_patterns=400,
            variation=ProcessVariation(0.0, 0.0),
            seed=17,
        )
        wild = yield_analysis(
            arch,
            num_dies=8,
            num_patterns=400,
            variation=ProcessVariation(0.15, 0.05),
            seed=17,
        )
        assert calm.latency_spread <= 1e-9
        assert wild.latency_spread > calm.latency_spread

    def test_variable_latency_dampens_corners(self, arch):
        """The architectural claim from [19]: elastic clocking converts
        die-to-die delay spread into occasional re-executions, so the
        *latency* spread across dies is far below the raw delay spread
        (2-sigma global of 0.15 ~ 35% die-to-die)."""
        wild = yield_analysis(
            arch,
            num_dies=12,
            num_patterns=500,
            variation=ProcessVariation(0.15, 0.0),
            seed=19,
        )
        assert wild.latency_spread < 0.35

    def test_aged_dies_slower(self, arch):
        fresh = yield_analysis(arch, num_dies=6, num_patterns=400, seed=23)
        aged = yield_analysis(
            arch, num_dies=6, num_patterns=400, seed=23, years=7.0
        )
        assert aged.mean_latency_ns >= fresh.mean_latency_ns
