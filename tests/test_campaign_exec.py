"""Campaign execution: sharding, checkpoint/resume, cone pruning.

The contracts under test (DESIGN.md section 9, "campaign execution"):

* ``run(workers=N)`` is bit-identical to the serial sweep;
* an interrupted campaign flushes its checkpoint, reports partial
  coverage, and resumes without re-simulating completed sites -- even
  from a checkpoint whose trailing line was torn by a kill;
* logic-cone pruning synthesizes *exactly* the report a full simulation
  would have produced, and never touches a site that can corrupt an
  observed output bit.
"""

import dataclasses
import json
import os

import pytest

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.config import DEFAULT_TECHNOLOGY
from repro.core import AgingAwareMultiplier
from repro.errors import CampaignInterrupted, CheckpointError, FaultError
from repro.faults import (
    CheckpointStore,
    DelayFault,
    InjectionCampaign,
    StuckAtFault,
    TransientBitFlip,
    make_batches,
    run_sharded,
    unique_site_ids,
)


@pytest.fixture(scope="module")
def arch8():
    arch = AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.5, characterize_patterns=300
    )
    return arch.with_cycle(0.6 * arch.critical_path_ns())


@pytest.fixture(scope="module")
def campaign(arch8):
    return InjectionCampaign.sweep(
        arch8, num_sites=16, num_patterns=150, seed=2
    )


@pytest.fixture(scope="module")
def serial_result(campaign):
    return campaign.run(workers=1, prune=False)


class TestSiteIds:
    def test_stable_and_parameter_derived(self):
        assert StuckAtFault(5, 1).site_id() == "sa1:n5"
        assert TransientBitFlip(5, 0.25, seed=3).site_id() == (
            TransientBitFlip(5, 0.25, seed=3).site_id()
        )
        assert DelayFault(2, 0.5).site_id() != DelayFault(2, 0.6).site_id()

    def test_duplicates_suffixed_in_order(self):
        fault = StuckAtFault(5, 0)
        ids = unique_site_ids([fault, StuckAtFault(6, 0), fault, fault])
        assert ids == ["sa0:n5", "sa0:n6", "sa0:n5#1", "sa0:n5#2"]
        assert len(set(ids)) == len(ids)

    def test_campaign_ids_match_faults(self, campaign):
        assert len(campaign.site_ids) == len(campaign.faults)
        assert len(set(campaign.site_ids)) == len(campaign.site_ids)


class TestShardedIdentity:
    def test_sharded_bit_identical_to_serial(self, campaign, serial_result):
        """Acceptance: workers=2 reproduces the serial sweep exactly."""
        sharded = campaign.run(workers=2, prune=False)
        assert sharded.sites == serial_result.sites
        assert sharded.summary() == {
            **serial_result.summary(),
            "sites_simulated": sharded.summary()["sites_simulated"],
        }

    def test_sharded_identical_with_odd_chunking(self, campaign,
                                                 serial_result):
        sharded = campaign.run(workers=2, chunk_size=3, prune=False)
        assert sharded.sites == serial_result.sites

    def test_make_batches_covers_everything_once(self):
        pending = list(range(17))
        batches = make_batches(pending, workers=4)
        flat = [i for b in batches for i in b]
        assert sorted(flat) == pending
        assert all(batches)
        assert make_batches([], workers=4) == []
        with pytest.raises(FaultError):
            make_batches(pending, workers=4, chunk_size=0)

    def test_run_sharded_requires_two_workers(self, campaign):
        with pytest.raises(FaultError):
            run_sharded(campaign, [0], workers=1)

    def test_bad_worker_count_rejected(self, campaign):
        with pytest.raises(FaultError):
            campaign.run(workers=0)


class TestCheckpointStore:
    def _fingerprint(self, n=1):
        return {"design": "test", "seed": n}

    def _store_with_reports(self, path, campaign, count=3):
        store = CheckpointStore(str(path))
        store.open(self._fingerprint())
        reports = []
        for index in range(count):
            site, _ = campaign.run_site(
                campaign.faults[index], campaign.site_ids[index]
            )
            store.append(campaign.site_ids[index], site)
            reports.append(site)
        store.close()
        return reports

    def test_round_trip(self, tmp_path, campaign):
        path = tmp_path / "cp.jsonl"
        written = self._store_with_reports(path, campaign)
        loaded = CheckpointStore(str(path)).load(self._fingerprint())
        assert [loaded[r.site_id] for r in written] == written

    def test_missing_file_is_empty(self, tmp_path):
        assert CheckpointStore(str(tmp_path / "nope.jsonl")).load() == {}

    def test_fingerprint_mismatch_rejected(self, tmp_path, campaign):
        path = tmp_path / "cp.jsonl"
        self._store_with_reports(path, campaign)
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path)).load(self._fingerprint(2))

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path)).load()

    def test_torn_trailing_line_dropped(self, tmp_path, campaign):
        path = tmp_path / "cp.jsonl"
        written = self._store_with_reports(path, campaign)
        # Chop the last line mid-JSON, as a kill mid-write would.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 25])
        store = CheckpointStore(str(path))
        loaded = store.load(self._fingerprint())
        assert store.dropped_lines == 1
        assert [loaded[r.site_id] for r in written[:-1]] == written[:-1]
        assert written[-1].site_id not in loaded

    def test_mid_file_corruption_refused(self, tmp_path, campaign):
        path = tmp_path / "cp.jsonl"
        self._store_with_reports(path, campaign)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-trailing line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path)).load()

    def test_append_requires_open(self, tmp_path, campaign):
        store = CheckpointStore(str(tmp_path / "cp.jsonl"))
        site, _ = campaign.run_site(campaign.faults[0])
        with pytest.raises(CheckpointError):
            store.append("x", site)

    def test_open_compacts_torn_bytes(self, tmp_path, campaign):
        path = tmp_path / "cp.jsonl"
        self._store_with_reports(path, campaign)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 25])
        with CheckpointStore(str(path)) as store:
            store.open(self._fingerprint())
        # After compaction every line parses again.
        for line in path.read_text().splitlines():
            json.loads(line)


class TestResume:
    def test_second_run_simulates_nothing(self, tmp_path, campaign,
                                          serial_result):
        path = str(tmp_path / "cp.jsonl")
        first = campaign.run(checkpoint=path, prune=False)
        second = campaign.run(checkpoint=path, prune=False)
        assert second.resumed_sites == len(campaign.faults)
        assert second.simulated_sites == 0
        assert second.sites == first.sites == serial_result.sites

    def test_resume_after_kill_mid_write(self, tmp_path, campaign,
                                         serial_result):
        """Acceptance: truncate the JSONL mid-line and resume."""
        path = tmp_path / "cp.jsonl"
        campaign.run(checkpoint=str(path), prune=False)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])  # torn trailing write
        resumed = campaign.run(checkpoint=str(path), prune=False)
        # Only the torn site re-simulates; everything else resumes.
        assert resumed.resumed_sites == len(campaign.faults) - 1
        assert resumed.simulated_sites == 1
        assert resumed.sites == serial_result.sites

    def test_resume_false_starts_over(self, tmp_path, campaign):
        path = str(tmp_path / "cp.jsonl")
        campaign.run(checkpoint=path, prune=False)
        fresh = campaign.run(checkpoint=path, resume=False, prune=False)
        assert fresh.resumed_sites == 0
        assert fresh.simulated_sites == len(campaign.faults)

    def test_resume_rejects_other_campaign(self, tmp_path, arch8, campaign):
        path = str(tmp_path / "cp.jsonl")
        campaign.run(checkpoint=path, prune=False)
        other = InjectionCampaign.sweep(
            arch8, num_sites=16, num_patterns=150, seed=99
        )
        with pytest.raises(CheckpointError):
            other.run(checkpoint=path)

    def test_sharded_resume_matches_serial(self, tmp_path, campaign,
                                           serial_result):
        path = tmp_path / "cp.jsonl"
        campaign.run(checkpoint=str(path), prune=False)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])
        resumed = campaign.run(
            checkpoint=str(path), workers=2, prune=False
        )
        assert resumed.sites == serial_result.sites


class TestInterruption:
    def test_partial_result_flushed_and_resumable(self, tmp_path, campaign,
                                                  serial_result):
        path = str(tmp_path / "cp.jsonl")

        def bomb(report, completed, total):
            if completed >= 5:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            campaign.run(checkpoint=path, prune=False, progress=bomb)
        exc = info.value
        assert exc.completed == 5
        assert exc.total == len(campaign.faults)
        assert exc.partial is not None
        assert not exc.partial.complete
        assert exc.partial.num_sites == 5
        assert "[PARTIAL -- interrupted]" in exc.partial.render()

        resumed = campaign.run(checkpoint=path, prune=False)
        assert resumed.complete
        assert resumed.resumed_sites == 5
        assert resumed.simulated_sites == len(campaign.faults) - 5
        assert resumed.sites == serial_result.sites

    def test_interrupt_without_checkpoint_still_partial(self, campaign):
        def bomb(report, completed, total):
            if completed >= 3:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            campaign.run(prune=False, progress=bomb)
        assert info.value.partial.num_sites == 3


class TestConePruning:
    """Pruning must be *exact*: synthesized == simulated, and no site
    that can corrupt an observed bit is ever pruned."""

    @pytest.fixture(scope="class")
    def dangling_arch(self):
        netlist = column_bypass_multiplier(4)
        md = netlist.input_ports["md"].nets
        mr = netlist.input_ports["mr"].nets
        # Two cells whose outputs feed nothing: faults here cannot reach
        # any product bit, so the campaign must prune them.
        first = netlist.and2(md[0], mr[1], name="dangle1")
        netlist.inv(first, name="dangle2")
        factory = AgedCircuitFactory.characterize(
            netlist, DEFAULT_TECHNOLOGY, num_patterns=200
        )
        arch = AgingAwareMultiplier(
            netlist=netlist, kind="column", width=4, skip=1,
            cycle_ns=0.5, factory=factory,
        )
        dangle1 = netlist.cells[-2].output
        dangle2_cell = len(netlist.cells) - 1
        return arch, dangle1, dangle2_cell

    def _faults(self, arch, dangle1, dangle2_cell):
        lsb = arch.netlist.output_ports["p"].nets[0]
        return [
            StuckAtFault(dangle1, 1),
            TransientBitFlip(dangle1, 0.5, seed=4),
            DelayFault(dangle2_cell, 0.7),
            StuckAtFault(lsb, 1),
            DelayFault(len(arch.netlist.cells) // 2, 0.4),
        ]

    def test_prunable_sites_found(self, dangling_arch):
        arch, dangle1, dangle2_cell = dangling_arch
        faults = self._faults(arch, dangle1, dangle2_cell)
        campaign = InjectionCampaign(arch, faults, num_patterns=150, seed=3)
        assert campaign.prunable_site_indices() == [0, 1, 2]

    def test_pruned_reports_equal_simulated(self, dangling_arch):
        """Property: for every site, the pruned sweep's report equals
        the fully simulated one modulo the ``pruned`` flag."""
        arch, dangle1, dangle2_cell = dangling_arch
        faults = self._faults(arch, dangle1, dangle2_cell)
        campaign = InjectionCampaign(arch, faults, num_patterns=150, seed=3)
        pruned = campaign.run(prune=True)
        simulated = campaign.run(prune=False)
        assert pruned.pruned_sites == 3
        assert simulated.pruned_sites == 0
        for fast, slow in zip(pruned.sites, simulated.sites):
            fast_d = dataclasses.asdict(fast)
            slow_d = dataclasses.asdict(slow)
            fast_d.pop("pruned")
            slow_d.pop("pruned")
            assert fast_d == slow_d

    def test_never_prunes_a_corrupting_site(self, campaign):
        """On the real sweep every fault reaches the product, so pruning
        must not drop anything -- and in general a pruned site can never
        be one the full simulation shows corrupting products."""
        pruned = campaign.run(prune=True)
        for site in pruned.sites:
            if site.pruned:
                assert site.corrupted_ops == 0

    def test_reach_mask_respects_port_subset(self, dangling_arch):
        from repro.timing import CompiledCircuit

        arch, dangle1, dangle2_cell = dangling_arch
        circuit = CompiledCircuit(arch.netlist)
        masks = circuit.output_reach_mask()
        lsb = arch.netlist.output_ports["p"].nets[0]
        assert masks[lsb] != 0
        assert masks[dangle1] == 0
        assert circuit.reaches_outputs(lsb)
        assert not circuit.reaches_outputs(dangle1)


class TestSerialization:
    def test_site_report_round_trip(self, serial_result):
        for site in serial_result.sites:
            clone = type(site).from_dict(site.to_dict())
            assert clone == site

    def test_malformed_payload_rejected(self):
        from repro.faults.campaign import SiteReport

        with pytest.raises(FaultError):
            SiteReport.from_dict({"label": "x"})

    def test_campaign_result_serializes(self, serial_result):
        from repro.analysis.serialize import to_json

        data = serial_result.to_dict()
        assert data["sites_total"] == serial_result.num_sites
        assert len(data["sites"]) == serial_result.num_sites
        json.loads(to_json(serial_result))
        json.loads(to_json(serial_result, summary_only=True))


class TestCli:
    def test_run_and_resume(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        path = str(tmp_path / "cp.jsonl")
        args = [
            "run", "--width", "4", "--sites", "8", "--patterns", "80",
            "--characterize-patterns", "200", "--quiet",
            "--checkpoint", path,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "8/8 sites" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "resumed 8" in second
        assert os.path.exists(path)

    def test_listing_without_command(self, capsys):
        from repro.faults.__main__ import main

        assert main([]) == 0
        assert "run" in capsys.readouterr().out
