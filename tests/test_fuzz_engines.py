"""Cross-engine fuzzing on randomized netlists.

Hypothesis builds random combinational DAGs over the full gate set
(minus TRIBUF, whose hold semantics are only defined under the bypass
masking discipline) and checks the engine-agreement invariants:

* all engines agree on settled output values;
* the event-driven transport-delay settle time never exceeds the
  floating-mode arrival bound;
* inertial-mode delays never exceed floating-mode delays;
* chunked streaming is exact;
* a dump/parse round trip simulates identically;
* the ``percell`` / ``soa`` / ``numba`` kernels are bit-identical on
  values, delays and bit arrivals, with and without folding and fault
  hooks (the numba kernel runs in pure-python mode when numba is
  absent, so the JIT kernel bodies are always part of the fuzz).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.injector import compile_with_faults
from repro.faults.models import StuckAtFault, TransientBitFlip
from repro.nets.export import dump_netlist, parse_netlist
from repro.nets.netlist import Netlist
from repro.timing import CompiledCircuit, EventSimulator
from repro.timing import jit
from repro.timing.engine import KERNELS


@pytest.fixture(scope="module", autouse=True)
def _exercise_jit_path():
    previous = jit.force_python(not jit.HAVE_NUMBA)
    yield
    jit.force_python(previous)

GATES_1 = ["INV", "BUF"]
GATES_2 = ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"]
GATES_3 = ["MUX2", "AND3", "OR3"]


@st.composite
def random_netlists(draw):
    """A random combinational DAG with 2-5 inputs and 5-25 gates."""
    num_inputs = draw(st.integers(2, 5))
    num_gates = draw(st.integers(5, 25))
    nl = Netlist("fuzz")
    nets = list(nl.add_input_port("x", num_inputs))
    rng_choices = st.integers(0, 10**9)
    for k in range(num_gates):
        arity_pick = draw(st.integers(0, 9))
        if arity_pick < 2:
            gate = GATES_1[draw(st.integers(0, len(GATES_1) - 1))]
            arity = 1
        elif arity_pick < 8:
            gate = GATES_2[draw(st.integers(0, len(GATES_2) - 1))]
            arity = 2
        else:
            gate = GATES_3[draw(st.integers(0, len(GATES_3) - 1))]
            arity = 3
        picks = [
            nets[draw(rng_choices) % len(nets)] for _ in range(arity)
        ]
        nets.append(nl.add_cell(gate, picks))
    # Outputs: the last few nets (guaranteed driven).
    out_count = draw(st.integers(1, min(4, len(nets))))
    nl.add_output_port("o", nets[-out_count:])
    nl.validate()

    num_patterns = draw(st.integers(2, 8))
    stimulus = [
        draw(st.integers(0, (1 << num_inputs) - 1))
        for _ in range(num_patterns)
    ]
    return nl, np.array(stimulus, dtype=np.uint64)


@settings(max_examples=60, deadline=None)
@given(random_netlists())
def test_engines_agree_on_values(case):
    nl, stimulus = case
    floating = CompiledCircuit(nl, mode="floating").run({"x": stimulus})
    inertial = CompiledCircuit(nl, mode="inertial").run({"x": stimulus})
    assert np.array_equal(floating.outputs["o"], inertial.outputs["o"])

    event = EventSimulator(nl)
    for k in range(1, stimulus.shape[0]):
        result = event.run_pair(
            {"x": int(stimulus[k - 1])}, {"x": int(stimulus[k])}
        )
        assert result.outputs["o"] == int(floating.outputs["o"][k])


@settings(max_examples=60, deadline=None)
@given(random_netlists())
def test_event_settle_bounded_by_floating(case):
    nl, stimulus = case
    floating = CompiledCircuit(nl, mode="floating").run({"x": stimulus})
    event = EventSimulator(nl)
    for k in range(1, stimulus.shape[0]):
        result = event.run_pair(
            {"x": int(stimulus[k - 1])}, {"x": int(stimulus[k])}
        )
        assert result.settle_time <= floating.delays[k] + 1e-9


@settings(max_examples=60, deadline=None)
@given(random_netlists())
def test_inertial_below_floating(case):
    nl, stimulus = case
    floating = CompiledCircuit(nl, mode="floating").run({"x": stimulus})
    inertial = CompiledCircuit(nl, mode="inertial").run({"x": stimulus})
    assert np.all(inertial.delays <= floating.delays + 1e-9)


@settings(max_examples=40, deadline=None)
@given(random_netlists(), st.integers(1, 5))
def test_chunked_streaming_exact(case, chunk_size):
    nl, stimulus = case
    circuit = CompiledCircuit(nl)
    whole = circuit.run({"x": stimulus})
    chunked = circuit.run({"x": stimulus}, chunk_size=chunk_size)
    assert np.array_equal(whole.outputs["o"], chunked.outputs["o"])
    assert np.allclose(whole.delays, chunked.delays)
    assert np.allclose(whole.switched_caps, chunked.switched_caps)


@settings(max_examples=40, deadline=None)
@given(random_netlists(), st.sampled_from(["inertial", "floating"]),
       st.booleans(), st.booleans())
def test_kernels_bit_identical(case, mode, fold, bit_arrivals):
    nl, stimulus = case
    results = {}
    for kernel in KERNELS:
        circuit = CompiledCircuit(nl, mode=mode, kernel=kernel)
        results[kernel] = circuit.run(
            {"x": stimulus}, fold=fold,
            collect_bit_arrivals=bit_arrivals,
        )
    want = results["percell"]
    for kernel in ("soa", "numba"):
        got = results[kernel]
        assert np.array_equal(got.outputs["o"], want.outputs["o"])
        assert np.array_equal(got.delays, want.delays)
        assert np.allclose(got.switched_caps, want.switched_caps,
                           rtol=1e-12, atol=1e-9)
        if bit_arrivals:
            assert np.array_equal(got.bit_arrivals["o"],
                                  want.bit_arrivals["o"])


@settings(max_examples=30, deadline=None)
@given(random_netlists(), st.integers(0, 10**9), st.booleans())
def test_kernels_bit_identical_with_fault_hooks(case, pick, seu):
    nl, stimulus = case
    cells = nl.cells
    target = cells[pick % len(cells)].output
    if seu:
        faults = [TransientBitFlip(net=target, rate=0.3,
                                   seed=pick % 97)]
    else:
        faults = [StuckAtFault(net=target, value=pick % 2)]
    results = {}
    for kernel in KERNELS:
        circuit = compile_with_faults(nl, faults, kernel=kernel)
        results[kernel] = circuit.run(
            {"x": stimulus}, collect_bit_arrivals=True
        )
    want = results["percell"]
    for kernel in ("soa", "numba"):
        got = results[kernel]
        assert np.array_equal(got.outputs["o"], want.outputs["o"])
        assert np.array_equal(got.delays, want.delays)
        assert np.array_equal(got.bit_arrivals["o"],
                              want.bit_arrivals["o"])


@settings(max_examples=40, deadline=None)
@given(random_netlists())
def test_export_roundtrip_simulates_identically(case):
    nl, stimulus = case
    parsed = parse_netlist(dump_netlist(nl))
    original = CompiledCircuit(nl).run({"x": stimulus})
    roundtrip = CompiledCircuit(parsed).run({"x": stimulus})
    assert np.array_equal(original.outputs["o"], roundtrip.outputs["o"])
    assert np.allclose(original.delays, roundtrip.delays)
