"""Power / EDP model."""

import pytest

from repro.config import DEFAULT_TECHNOLOGY
from repro.errors import SimulationError
from repro.timing import CompiledCircuit, power_report
from repro.workloads import uniform_operands


@pytest.fixture(scope="module")
def cb8_run():
    from repro.arith import column_bypass_multiplier

    netlist = column_bypass_multiplier(8)
    circuit = CompiledCircuit(netlist)
    md, mr = uniform_operands(8, 500, seed=17)
    return netlist, circuit.run({"md": md, "mr": mr})


class TestPowerReport:
    def test_components_positive(self, cb8_run):
        netlist, stream = cb8_run
        report = power_report(netlist, stream, avg_latency_ns=2.0)
        assert report.dynamic_watts > 0
        assert report.leakage_watts > 0
        assert report.sequential_watts == 0
        assert report.total_watts == pytest.approx(
            report.dynamic_watts + report.leakage_watts
        )

    def test_sequential_overhead(self, cb8_run):
        netlist, stream = cb8_run
        plain = power_report(netlist, stream, 2.0)
        with_ffs = power_report(
            netlist, stream, 2.0, input_ff_bits=16, output_ff_bits=16
        )
        razored = power_report(
            netlist, stream, 2.0, input_ff_bits=16, razor_bits=16
        )
        assert with_ffs.total_watts > plain.total_watts
        # Razor flip-flops are heavier than plain ones.
        assert razored.sequential_watts > with_ffs.sequential_watts / 2

    def test_leakage_decreases_with_aging(self, cb8_run):
        netlist, stream = cb8_run
        fresh = power_report(netlist, stream, 2.0, mean_delta_vth=0.0)
        aged = power_report(netlist, stream, 2.0, mean_delta_vth=0.05)
        assert aged.leakage_watts < fresh.leakage_watts
        assert aged.dynamic_watts == pytest.approx(fresh.dynamic_watts)

    def test_cycles_per_op_scales_clock_power(self, cb8_run):
        netlist, stream = cb8_run
        one = power_report(netlist, stream, 2.0, input_ff_bits=16,
                           cycles_per_op=1.0)
        two = power_report(netlist, stream, 2.0, input_ff_bits=16,
                           cycles_per_op=2.0)
        assert two.sequential_watts == pytest.approx(
            2 * one.sequential_watts
        )

    def test_edp_definition(self, cb8_run):
        netlist, stream = cb8_run
        report = power_report(netlist, stream, 2.0)
        assert report.edp_joule_ns == pytest.approx(
            report.energy_per_op_joules * 2.0
        )

    def test_longer_latency_lowers_power_not_energy(self, cb8_run):
        netlist, stream = cb8_run
        fast = power_report(netlist, stream, 1.0)
        slow = power_report(netlist, stream, 4.0)
        assert slow.dynamic_watts < fast.dynamic_watts
        # Dynamic energy per op is latency-independent; leakage energy
        # grows with latency, so total energy is higher when slower.
        assert slow.energy_per_op_joules > fast.energy_per_op_joules

    def test_invalid_latency_rejected(self, cb8_run):
        netlist, stream = cb8_run
        with pytest.raises(SimulationError):
            power_report(netlist, stream, 0.0)
        with pytest.raises(SimulationError):
            power_report(netlist, stream, 1.0, cycles_per_op=0.0)

    def test_technology_voltage_scaling(self, cb8_run):
        netlist, stream = cb8_run
        low = power_report(netlist, stream, 2.0)
        high = power_report(
            netlist, stream, 2.0,
            technology=DEFAULT_TECHNOLOGY.replace(vdd=1.2),
        )
        assert high.dynamic_watts > low.dynamic_watts
