"""Structural export round trip and area accounting."""

import numpy as np
import pytest

from repro.arith import column_bypass_multiplier, golden_products
from repro.errors import NetlistError
from repro.nets.area import area_report, transistor_count
from repro.nets.cells import DFF_TRANSISTORS, RAZOR_FF_TRANSISTORS
from repro.nets.export import dump_netlist, parse_netlist
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


class TestExportRoundTrip:
    def test_structure_preserved(self, cb4):
        text = dump_netlist(cb4)
        parsed = parse_netlist(text)
        assert parsed.num_nets == cb4.num_nets
        assert len(parsed.cells) == len(cb4.cells)
        assert [c.cell_type.name for c in parsed.cells] == [
            c.cell_type.name for c in cb4.cells
        ]
        assert list(parsed.output_ports) == list(cb4.output_ports)

    def test_parsed_netlist_simulates_identically(self, cb4):
        parsed = parse_netlist(dump_netlist(cb4))
        md, mr = uniform_operands(4, 100, seed=31)
        original = CompiledCircuit(cb4).run({"md": md, "mr": mr})
        roundtrip = CompiledCircuit(parsed).run({"md": md, "mr": mr})
        assert np.array_equal(original.outputs["p"], roundtrip.outputs["p"])
        assert np.allclose(original.delays, roundtrip.delays)

    def test_groups_survive(self, cb4):
        parsed = parse_netlist(dump_netlist(cb4))
        assert {c.group for c in parsed.cells if c.group} == {
            c.group for c in cb4.cells if c.group
        }

    def test_empty_text_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("")

    def test_garbage_keyword_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("netlist x 2\nfrobnicate y\n")

    def test_cell_before_header_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("cell INV u0 - 2 -> 3\n")


class TestArea:
    def test_transistor_count_sums_cells(self, am4):
        expected = sum(c.cell_type.transistors for c in am4.cells)
        assert transistor_count(am4) == expected

    def test_report_breakdown(self, cb4):
        report = area_report(
            cb4, input_ff_bits=8, output_ff_bits=8, razor_bits=4
        )
        assert report.flip_flops == 16 * DFF_TRANSISTORS
        assert report.razor_flip_flops == 4 * RAZOR_FF_TRANSISTORS
        assert report.total == (
            report.combinational + report.flip_flops
            + report.razor_flip_flops
        )
        assert report.breakdown()["total"] == report.total

    def test_normalization(self, am4, cb4):
        base = area_report(am4)
        other = area_report(cb4)
        assert other.normalized_to(base) == pytest.approx(
            other.total / base.total
        )
        assert other.normalized_to(base) > 1.0

    def test_ahl_netlist_counts(self, cb4):
        bigger = area_report(cb4, ahl_netlist=cb4, extra_dff_bits=2)
        assert bigger.ahl == transistor_count(cb4) + 2 * DFF_TRANSISTORS
