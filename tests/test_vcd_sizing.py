"""VCD export and gate-sizing transforms."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.nets.sizing import (
    SizingPlan,
    uniform_sizing,
    upsize_cells,
    upsize_critical_paths,
)
from repro.timing import CompiledCircuit, EventSimulator, StaticTiming
from repro.timing.vcd import render_vcd, write_vcd


class TestVcd:
    @pytest.fixture(scope="class")
    def traced(self, cb4):
        sim = EventSimulator(cb4)
        result = sim.run_pair(
            {"md": 5, "mr": 3}, {"md": 10, "mr": 15}, record_trace=True
        )
        return sim, result

    def test_trace_recorded(self, traced):
        _, result = traced
        assert result.trace is not None
        assert result.initial_values is not None
        assert len(result.trace) == result.num_events
        times = [t for t, _, _ in result.trace]
        assert times == sorted(times)

    def test_render_structure(self, traced, cb4):
        _, result = traced
        text = render_vcd(result, cb4)
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "$dumpvars" in text
        # Every input port bit is declared.
        for i in range(4):
            assert "md[%d]" % i in text

    def test_time_stamps_in_picoseconds(self, traced, cb4):
        _, result = traced
        text = render_vcd(result, cb4)
        stamps = [
            int(line[1:]) for line in text.splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)
        expected_last = int(round(result.trace[-1][0] * 1000))
        assert stamps[-1] == expected_last

    def test_untraced_result_rejected(self, cb4):
        sim = EventSimulator(cb4)
        result = sim.run_pair({"md": 0, "mr": 0}, {"md": 1, "mr": 1})
        with pytest.raises(SimulationError):
            render_vcd(result, cb4)

    def test_write_vcd(self, traced, cb4, tmp_path):
        _, result = traced
        path = tmp_path / "wave.vcd"
        write_vcd(result, cb4, str(path))
        assert path.read_text().startswith("$date")

    def test_net_subset(self, traced, cb4):
        _, result = traced
        only = list(cb4.output_ports["p"].nets[:2])
        text = render_vcd(result, cb4, nets=only)
        assert text.count("$var wire") == 2


class TestSizing:
    def test_uniform_plan(self, cb4):
        plan = uniform_sizing(cb4, 2.0)
        assert np.all(plan.delay_scale() == 0.5)
        assert plan.extra_transistors(cb4) > 0
        assert plan.num_upsized() == len(cb4.cells)

    def test_subset_plan(self, cb4):
        plan = upsize_cells(cb4, [0, 3], 1.5)
        assert plan.num_upsized() == 2
        scale = plan.delay_scale()
        assert scale[0] == pytest.approx(1 / 1.5)
        assert scale[1] == 1.0

    def test_bad_factor_rejected(self, cb4):
        with pytest.raises(ConfigError):
            uniform_sizing(cb4, 0.5)
        with pytest.raises(ConfigError):
            upsize_cells(cb4, [0], 0.9)
        with pytest.raises(ConfigError):
            SizingPlan("x", np.array([0.5]))

    def test_bad_index_rejected(self, cb4):
        with pytest.raises(ConfigError):
            upsize_cells(cb4, [9999], 1.5)

    def test_plan_netlist_mismatch(self, cb4, am4):
        plan = uniform_sizing(cb4, 1.5)
        with pytest.raises(ConfigError):
            plan.extra_transistors(am4)

    def test_critical_path_sizing_compresses_cycle(self, cb16):
        base = StaticTiming(cb16).critical_delay
        plan = upsize_critical_paths(cb16, factor=1.5, slack_fraction=0.97)
        sized = StaticTiming(
            cb16, delay_scale=plan.delay_scale()
        ).critical_delay
        assert sized < base
        # Targeted: a strict subset of the design (arrays are balanced,
        # so near-critical cover is wide, but never everything).
        assert 0 < plan.num_upsized() < len(cb16.cells)
        # A tighter slack threshold upsizes fewer cells.
        wide = upsize_critical_paths(cb16, factor=1.5, slack_fraction=0.9)
        assert plan.num_upsized() < wide.num_upsized()

    def test_targeted_cheaper_than_uniform(self, cb16):
        targeted = upsize_critical_paths(cb16, factor=1.5)
        uniform = uniform_sizing(cb16, 1.5)
        assert targeted.extra_transistors(cb16) < (
            uniform.extra_transistors(cb16)
        )
        # Yet uniform can't beat targeted by more than its own factor.
        t_crit = StaticTiming(
            cb16, delay_scale=targeted.delay_scale()
        ).critical_delay
        u_crit = StaticTiming(
            cb16, delay_scale=uniform.delay_scale()
        ).critical_delay
        assert u_crit <= t_crit + 1e-9

    def test_sized_circuit_still_correct(self, cb4, exhaustive4):
        from repro.arith import golden_products

        plan = upsize_critical_paths(cb4, factor=2.0)
        circuit = CompiledCircuit(cb4, delay_scale=plan.delay_scale())
        md, mr = exhaustive4
        result = circuit.run({"md": md, "mr": mr})
        assert np.array_equal(
            result.outputs["p"], golden_products(md, mr, 4)
        )

    def test_slack_fraction_validation(self, cb4):
        with pytest.raises(ConfigError):
            upsize_critical_paths(cb4, slack_fraction=0.0)
