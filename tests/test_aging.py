"""BTI model, stress extraction and delay degradation."""

import numpy as np
import pytest

from repro.aging import (
    AgedCircuitFactory,
    BTIModel,
    StressProfile,
    aging_delay_scale,
    delay_scale_factor,
    extract_stress,
)
from repro.arith import column_bypass_multiplier
from repro.config import DEFAULT_TECHNOLOGY
from repro.errors import ConfigError, SimulationError
from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands


class TestBTIModel:
    model = BTIModel()

    def test_kdc_positive(self):
        assert self.model.k_dc("nbti") > 0
        assert self.model.k_dc("pbti") > 0

    def test_pbti_scaled_by_ratio(self):
        tech = DEFAULT_TECHNOLOGY
        # Same overdrive isolates the pbti_ratio factor.
        model = BTIModel(tech.replace(vth_n=tech.vth_p))
        assert model.k_dc("pbti") == pytest.approx(
            tech.pbti_ratio * model.k_dc("nbti")
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            self.model.k_dc("hci")

    def test_alpha_monotone_in_duty(self):
        probes = np.linspace(0, 1, 11)
        alphas = self.model.alpha(probes)
        assert np.all(np.diff(alphas) >= 0)
        assert alphas[0] == 0.0
        assert alphas[-1] == pytest.approx(1.0)

    def test_drift_follows_power_law(self):
        """dVth(t) ~ t^(1/6): doubling time scales by 2^(1/6)."""
        one = float(self.model.delta_vth(1.0, 0.5))
        two = float(self.model.delta_vth(2.0, 0.5))
        assert two / one == pytest.approx(2 ** (1 / 6), rel=1e-6)

    def test_zero_years_zero_drift(self):
        assert float(self.model.delta_vth(0.0, 0.5)) == 0.0

    def test_negative_years_rejected(self):
        with pytest.raises(ConfigError):
            self.model.delta_vth(-1.0, 0.5)

    def test_static_worse_than_ac(self):
        assert self.model.static_drift(7.0) > float(
            self.model.delta_vth(7.0, 0.5)
        )

    def test_drift_clamped_below_overdrive(self):
        huge = BTIModel(DEFAULT_TECHNOLOGY.replace(bti_prefactor=1e15))
        drift = huge.static_drift(7.0)
        assert drift < DEFAULT_TECHNOLOGY.gate_overdrive_p

    def test_seven_year_magnitude_is_tens_of_mv(self):
        """Sanity: the calibrated model lands in the published range."""
        drift = float(self.model.delta_vth(7.0, 0.5))
        assert 0.02 < drift < 0.12


class TestStressExtraction:
    def test_default_is_half(self, cb4):
        profile = extract_stress(cb4, None)
        assert np.all(profile.pmos_stress == 0.5)
        assert profile.num_cells == len(cb4.cells)

    def test_complementary(self, cb4):
        circuit = CompiledCircuit(cb4)
        md, mr = uniform_operands(4, 300, seed=19)
        result = circuit.run(
            {"md": md, "mr": mr}, collect_net_stats=True
        )
        profile = extract_stress(cb4, result.signal_prob)
        assert np.allclose(profile.pmos_stress + profile.nmos_stress, 1.0)
        assert 0.0 <= profile.mean_pmos() <= 1.0

    def test_short_prob_vector_rejected(self, cb4):
        with pytest.raises(SimulationError):
            extract_stress(cb4, np.zeros(3))

    def test_out_of_range_probs_rejected(self, cb4):
        probs = np.zeros(cb4.num_nets)
        probs[5] = 1.5
        with pytest.raises(SimulationError):
            extract_stress(cb4, probs)

    def test_profile_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            StressProfile("x", np.zeros(3), np.zeros(4))


class TestDegradation:
    def test_scale_factor_identity_at_zero_drift(self):
        assert delay_scale_factor(np.zeros(3), 0.6, 1.3).tolist() == [
            1.0, 1.0, 1.0,
        ]

    def test_scale_factor_monotone(self):
        drifts = np.linspace(0, 0.1, 5)
        scales = delay_scale_factor(drifts, 0.6, 1.3)
        assert np.all(np.diff(scales) > 0)

    def test_scale_factor_rejects_excessive_drift(self):
        with pytest.raises(SimulationError):
            delay_scale_factor(np.array([0.7]), 0.6, 1.3)

    def test_scale_factor_rejects_negative(self):
        with pytest.raises(SimulationError):
            delay_scale_factor(np.array([-0.01]), 0.6, 1.3)

    def test_aging_delay_scale_all_above_one(self, cb4):
        profile = extract_stress(cb4, None)
        scale = aging_delay_scale(cb4, profile, 5.0)
        assert scale.shape == (len(cb4.cells),)
        assert np.all(scale > 1.0)

    def test_aging_scale_grows_with_years(self, cb4):
        profile = extract_stress(cb4, None)
        early = aging_delay_scale(cb4, profile, 1.0)
        late = aging_delay_scale(cb4, profile, 7.0)
        assert np.all(late > early)

    def test_mismatched_profile_rejected(self, cb4, am4):
        profile = extract_stress(am4, None)
        with pytest.raises(SimulationError):
            aging_delay_scale(cb4, profile, 1.0)


class TestAgedCircuitFactory:
    @pytest.fixture(scope="class")
    def factory(self):
        netlist = column_bypass_multiplier(6)
        return AgedCircuitFactory.characterize(
            netlist, num_patterns=300, seed=23
        )

    def test_fresh_circuit_has_unit_scale(self, factory):
        circuit = factory.circuit(0.0)
        assert np.all(circuit.delay_scale == 1.0)

    def test_circuits_cached(self, factory):
        assert factory.circuit(3.0) is factory.circuit(3.0)
        assert factory.circuit(3.0) is not factory.circuit(4.0)

    def test_aged_slower_everywhere(self, factory):
        md, mr = uniform_operands(6, 200, seed=29)
        fresh = factory.circuit(0.0).run({"md": md, "mr": mr})
        aged = factory.circuit(7.0).run({"md": md, "mr": mr})
        assert np.all(aged.delays >= fresh.delays - 1e-12)
        assert aged.mean_delay > fresh.mean_delay

    def test_aged_functionally_identical(self, factory):
        md, mr = uniform_operands(6, 200, seed=31)
        fresh = factory.circuit(0.0).run({"md": md, "mr": mr})
        aged = factory.circuit(7.0).run({"md": md, "mr": mr})
        assert np.array_equal(fresh.outputs["p"], aged.outputs["p"])

    def test_mean_delta_vth(self, factory):
        assert factory.mean_delta_vth(0.0) == 0.0
        assert 0.0 < factory.mean_delta_vth(7.0) < 0.2
        assert factory.mean_delta_vth(7.0) > factory.mean_delta_vth(1.0)


class TestCharacterizationStimulus:
    """Regression: width >= 64 ports must draw the full uint64 range.

    An earlier revision drew from ``[0, 2**63)`` for 64-bit ports, so
    bit 63 was constant-0 through characterization -- biasing the
    measured signal probabilities (and hence BTI stress) of everything
    fed by the top operand bit.
    """

    def _stimulus(self, width, n=4000, seed=17):
        from collections import namedtuple

        from repro.aging.degradation import characterization_stimulus

        Port = namedtuple("Port", "width")
        return characterization_stimulus(
            {"md": Port(width)}, n, seed
        )["md"]

    def test_narrow_ports_bounded(self):
        for width in (4, 16, 32, 63):
            draws = self._stimulus(width)
            assert draws.dtype == np.uint64
            assert int(draws.max()) < (1 << width)
            # The top in-range bit is actually exercised.
            top = (draws >> np.uint64(width - 1)) & np.uint64(1)
            assert 0.4 < top.mean() < 0.6

    def test_wide_port_exercises_bit_63(self):
        draws = self._stimulus(64)
        top = (draws >> np.uint64(63)) & np.uint64(1)
        assert top.any(), "bit 63 never drawn (the [0, 2**63) bug)"
        assert 0.45 < top.mean() < 0.55

    def test_wide_port_bits_uniform(self):
        """Every bit lane of a 64-bit draw is ~fair -- pins the
        distribution, not just the top bit."""
        draws = self._stimulus(64, n=8000)
        for bit in (0, 31, 62, 63):
            lane = (draws >> np.uint64(bit)) & np.uint64(1)
            assert 0.45 < lane.mean() < 0.55, "bit %d biased" % bit

    def test_deterministic_per_seed(self):
        assert np.array_equal(self._stimulus(64), self._stimulus(64))
        assert not np.array_equal(
            self._stimulus(64, seed=17), self._stimulus(64, seed=18)
        )
