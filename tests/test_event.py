"""Event-driven reference simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nets.netlist import Netlist
from repro.timing import EventSimulator
from repro.timing.event import EventResult


def and_or_net():
    nl = Netlist("ao")
    a, = nl.add_input_port("a", 1)
    b, = nl.add_input_port("b", 1)
    c, = nl.add_input_port("c", 1)
    nl.add_output_port("o", [nl.or2(nl.and2(a, b), c)])
    return nl


class TestSettle:
    def test_settle_values(self):
        sim = EventSimulator(and_or_net())
        state = sim.settle({"a": 1, "b": 1, "c": 0})
        out_net = sim.netlist.output_ports["o"].nets[0]
        assert state[out_net] == 1

    def test_missing_port_rejected(self):
        sim = EventSimulator(and_or_net())
        with pytest.raises(SimulationError):
            sim.settle({"a": 1})

    def test_value_too_wide_rejected(self):
        sim = EventSimulator(and_or_net())
        with pytest.raises(SimulationError):
            sim.settle({"a": 2, "b": 0, "c": 0})


class TestRunPair:
    def test_no_change_no_events(self):
        sim = EventSimulator(and_or_net())
        result = sim.run_pair(
            {"a": 1, "b": 1, "c": 0}, {"a": 1, "b": 1, "c": 0}
        )
        assert result.num_events == 0
        assert result.settle_time == 0.0
        assert result.outputs["o"] == 1

    def test_single_transition_timing(self):
        nl = Netlist("chain")
        a, = nl.add_input_port("a", 1)
        x = nl.inv(a)
        y = nl.inv(x)
        nl.add_output_port("o", [y])
        sim = EventSimulator(nl)
        result = sim.run_pair({"a": 0}, {"a": 1})
        inv = nl.library.get("INV").delay_units * sim.technology.time_unit_ns
        assert result.settle_time == pytest.approx(2 * inv)
        assert result.outputs["o"] == 1

    def test_controlling_input_short_circuits(self):
        """An early controlling 0 on an AND pins the output: later events
        on the other pin do not change it."""
        nl = Netlist("ctrl")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow = b
        for _ in range(5):
            slow = nl.inv(nl.inv(slow))  # delay b's arrival
        nl.add_output_port("o", [nl.and2(a, slow)])
        sim = EventSimulator(nl)
        # a: 1 -> 0 (controlling).  b flips too, arriving much later.
        result = sim.run_pair({"a": 1, "b": 1}, {"a": 0, "b": 0})
        assert result.outputs["o"] == 0
        and_delay = (
            nl.library.get("AND2").delay_units * sim.technology.time_unit_ns
        )
        # Output settles when the controlling input lands, not when the
        # slow chain does.
        out_net = nl.output_ports["o"].nets[0]
        assert result.bit_last_change["o"][0] <= and_delay + 1e-9

    def test_tristate_holds_when_disabled(self):
        nl = Netlist("tri")
        d, = nl.add_input_port("d", 1)
        e, = nl.add_input_port("e", 1)
        nl.add_output_port("o", [nl.tribuf(d, e)])
        sim = EventSimulator(nl)
        # Settle enabled at d=1; then disable and change d.
        result = sim.run_pair({"d": 1, "e": 1}, {"d": 0, "e": 0})
        assert result.outputs["o"] == 1  # held

    def test_glitch_counted_as_events(self):
        """A static-0 hazard on an AND: both inputs swap, output pulses."""
        nl = Netlist("hazard")
        a, = nl.add_input_port("a", 1)
        b, = nl.add_input_port("b", 1)
        slow_b = nl.inv(nl.inv(b))
        nl.add_output_port("o", [nl.and2(a, slow_b)])
        sim = EventSimulator(nl)
        # a: 0->1 arrives fast, slow_b: 1->0 arrives late => 0-1-0 pulse.
        result = sim.run_pair({"a": 0, "b": 1}, {"a": 1, "b": 0})
        assert result.outputs["o"] == 0
        assert result.num_events >= 3  # includes the pulse

    def test_result_structure(self):
        sim = EventSimulator(and_or_net())
        result = sim.run_pair(
            {"a": 0, "b": 0, "c": 0}, {"a": 1, "b": 1, "c": 0}
        )
        assert isinstance(result, EventResult)
        assert set(result.bit_last_change) == {"o"}
        assert result.settle_time == max(result.bit_last_change["o"])
