"""Calibration reproduces the shipped technology defaults."""

import pytest

from repro.config import DEFAULT_TECHNOLOGY
from repro.errors import CalibrationError
from repro.experiments.calibration import (
    AM16_CRITICAL_NS,
    SEVEN_YEAR_DRIFT,
    calibrate_bti_prefactor,
    calibrate_time_unit,
)
from repro.timing import StaticTiming
from repro.arith import array_multiplier


class TestTimeUnit:
    def test_matches_shipped_default(self):
        fitted = calibrate_time_unit()
        assert fitted.time_unit_ns == pytest.approx(
            DEFAULT_TECHNOLOGY.time_unit_ns, rel=1e-6
        )

    def test_hits_target(self):
        fitted = calibrate_time_unit(target_ns=2.0)
        crit = StaticTiming(array_multiplier(16), fitted).critical_delay
        assert crit == pytest.approx(2.0, rel=1e-9)

    def test_bad_target_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_time_unit(target_ns=0.0)

    def test_paper_target_constant(self):
        assert AM16_CRITICAL_NS == 1.32


class TestBTIPrefactor:
    def test_matches_shipped_default(self):
        fitted = calibrate_bti_prefactor(characterize_patterns=600)
        # Stress profiles differ slightly run to run; the fitted
        # prefactor must land near the shipped constant.
        assert fitted.bti_prefactor == pytest.approx(
            DEFAULT_TECHNOLOGY.bti_prefactor, rel=0.15
        )

    def test_bad_target_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_bti_prefactor(target_drift=1.5)

    def test_paper_target_constant(self):
        assert SEVEN_YEAR_DRIFT == pytest.approx(0.13)
